package experiments

import (
	"context"
	"fmt"

	"wavemin/internal/adb"
	"wavemin/internal/bench"
	"wavemin/internal/multimode"
	"wavemin/internal/parallel"
)

// Table7Config mirrors the paper's Table VII: four power modes over 4–10
// voltage domains at 0.9/1.1 V, three skew bounds, ADB-embedding-only
// baseline vs ClkWaveMin-M.
//
// Scaling substitution: the paper's testbed trees carry nanosecond-scale
// insertion delays, so its κ ∈ {90, 110, 130} ps bounds bind. Our
// synthetic 45 nm trees have ~10× smaller arrival spreads; the default
// bounds are scaled to {12, 16, 20} ps so the same regimes appear (tight
// bounds force many ADBs, loose bounds few or none — cf. s15850@130 in
// the paper with zero ADBs).
type Table7Config struct {
	Circuits         []string
	SkewBounds       []float64
	NumModes         int
	Samples          int // per mode
	Epsilon          float64
	MaxIntersections int
	// Workers bounds both the (circuit, κ) row fan-out and the per-zone
	// solver parallelism inside each optimization. 0 = GOMAXPROCS,
	// 1 = serial; results are identical for every worker count.
	Workers int
}

// DefaultTable7Config returns the scaled defaults over all benchmarks.
func DefaultTable7Config() Table7Config {
	names := make([]string, 0, 7)
	for _, s := range allSpecs() {
		names = append(names, s.Name)
	}
	return Table7Config{
		Circuits: names, SkewBounds: []float64{12, 16, 20},
		NumModes: 4, Samples: 32, Epsilon: 0.01, MaxIntersections: 8,
	}
}

// Table7Row is one (circuit, κ) comparison.
type Table7Row struct {
	Name    string
	Kappa   float64
	Base    Golden // ADB-embedding-only
	BaseADB int
	Wave    Golden // ClkWaveMin-M
	WaveADB int
	WaveADI int
	ImpPeak float64
	ImpVDD  float64
	ImpGnd  float64
	SkewOK  bool // ClkWaveMin-M result meets κ (with retune slack)
}

// Table7 is the full result.
type Table7 struct {
	Config                  Table7Config
	Rows                    []Table7Row
	AvgPeak, AvgVDD, AvgGnd float64
}

// domainsFor picks the paper's "four to ten power domains" by size.
func domainsFor(spec bench.Spec) int {
	n := spec.NumLeaves / 30
	if n < 4 {
		n = 4
	}
	if n > 10 {
		n = 10
	}
	return n
}

// RunTable7 runs the multi-mode comparison.
func RunTable7(cfg Table7Config) (*Table7, error) {
	out := &Table7{Config: cfg}
	// One row per (circuit, κ) pair; each pair is fully independent (its
	// own LoadCircuit), so fan out flat and merge in order.
	nk := len(cfg.SkewBounds)
	rows := make([]Table7Row, len(cfg.Circuits)*nk)
	ferr := parallel.ForEach(context.Background(), cfg.Workers, len(rows), func(k int) error {
		name := cfg.Circuits[k/nk]
		kappa := cfg.SkewBounds[k%nk]
		ckt, err := LoadCircuit(name)
		if err != nil {
			return err
		}
		nd := domainsFor(ckt.Spec)
		domains := bench.AssignDomains(ckt.Tree, ckt.Spec.DieW, ckt.Spec.DieH, nd)
		modes := ckt.Spec.Modes(domains, cfg.NumModes)
		adbCell := ckt.Lib.MustByName("ADB_X8")
		adiCell := ckt.Lib.MustByName("ADI_X8")

		// Baseline: ADB embedding only (noise-unaware), per [17].
		baseTree := ckt.Tree.Clone()
		baseADBs := 0
		if !baseTree.MeetsSkew(kappa, modes) {
			ins, err := adb.Insert(context.Background(), baseTree, adbCell, modes, kappa)
			if err != nil {
				return fmt.Errorf("%s κ=%g baseline: %w", name, kappa, err)
			}
			baseADBs = ins.NumADBs()
		}
		baseG, err := EvaluateModes(baseTree, modes, ckt.Grid)
		if err != nil {
			return err
		}

		// ClkWaveMin-M on the same ADB-embedded tree.
		waveTree := baseTree.Clone()
		res, err := multimode.Optimize(context.Background(), waveTree, modes, multimode.Config{
			Library: sizingLib(ckt.Lib), ADBCell: adbCell, ADICell: adiCell,
			Kappa: kappa, Samples: cfg.Samples, Epsilon: cfg.Epsilon,
			MaxIntersections: cfg.MaxIntersections, Workers: cfg.Workers,
		})
		if err != nil {
			return fmt.Errorf("%s κ=%g wavemin-m: %w", name, kappa, err)
		}
		if err := multimode.ApplyResult(context.Background(), waveTree, modes, kappa, res); err != nil {
			return fmt.Errorf("%s κ=%g apply: %w", name, kappa, err)
		}
		waveG, err := EvaluateModes(waveTree, modes, ckt.Grid)
		if err != nil {
			return err
		}

		// Count adjustable cells at both leaf and non-leaf positions
		// (the paper's #ADBs accounting).
		waveADB, waveADI := adb.CountAdjustables(waveTree)
		rows[k] = Table7Row{
			Name: name, Kappa: kappa,
			Base: baseG, BaseADB: baseADBs,
			Wave: waveG, WaveADB: waveADB, WaveADI: waveADI,
			ImpPeak: improvement(baseG.Peak, waveG.Peak),
			ImpVDD:  improvement(baseG.VDD, waveG.VDD),
			ImpGnd:  improvement(baseG.Gnd, waveG.Gnd),
			SkewOK:  waveTree.MeetsSkew(kappa+2, modes),
		}
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	out.Rows = rows
	for _, row := range rows {
		out.AvgPeak += row.ImpPeak
		out.AvgVDD += row.ImpVDD
		out.AvgGnd += row.ImpGnd
	}
	if n := float64(len(out.Rows)); n > 0 {
		out.AvgPeak /= n
		out.AvgVDD /= n
		out.AvgGnd /= n
	}
	return out, nil
}

// Format renders the paper's Table VII layout.
func (t *Table7) Format() string {
	w := &tableWriter{}
	w.row(cellf(10, "Circuit"), cellf(6, "κ(ps)"),
		cellf(9, "B peak"), cellf(8, "B VDD"), cellf(8, "B Gnd"), cellf(6, "#ADB"),
		cellf(9, "W peak"), cellf(8, "W VDD"), cellf(8, "W Gnd"), cellf(6, "#ADB"), cellf(6, "#ADI"),
		cellf(8, "Peak %%"), cellf(8, "VDD %%"), cellf(8, "Gnd %%"), cellf(5, "skew"))
	for _, r := range t.Rows {
		ok := "ok"
		if !r.SkewOK {
			ok = "VIOL"
		}
		w.row(cellf(10, "%s", r.Name), cellf(6, "%.0f", r.Kappa),
			cellf(9, "%.3f", mA(r.Base.Peak)), cellf(8, "%.2f", mV(r.Base.VDD)), cellf(8, "%.2f", mV(r.Base.Gnd)), cellf(6, "%d", r.BaseADB),
			cellf(9, "%.3f", mA(r.Wave.Peak)), cellf(8, "%.2f", mV(r.Wave.VDD)), cellf(8, "%.2f", mV(r.Wave.Gnd)), cellf(6, "%d", r.WaveADB), cellf(6, "%d", r.WaveADI),
			cellf(8, "%.2f", r.ImpPeak), cellf(8, "%.2f", r.ImpVDD), cellf(8, "%.2f", r.ImpGnd), cellf(5, "%s", ok))
	}
	w.row(cellf(10, "Average"), cellf(6, ""), cellf(9, ""), cellf(8, ""), cellf(8, ""), cellf(6, ""),
		cellf(9, ""), cellf(8, ""), cellf(8, ""), cellf(6, ""), cellf(6, ""),
		cellf(8, "%.2f", t.AvgPeak), cellf(8, "%.2f", t.AvgVDD), cellf(8, "%.2f", t.AvgGnd), cellf(5, ""))
	return w.String()
}
