package experiments

import (
	"runtime"
	"testing"
)

// TestParallelDeterminismTable5 requires that the row fan-out (and the
// solver parallelism inside each row) reproduces the serial results
// bitwise.
func TestParallelDeterminismTable5(t *testing.T) {
	cfg := Table5Config{
		Circuits: []string{"s15850"}, Kappa: 20, Samples: 16,
		Epsilon: 0.05, MaxIntervals: 2, Workers: 1,
	}
	want, err := RunTable5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = runtime.GOMAXPROCS(0)
	got, err := RunTable5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatal("row count differs")
	}
	for i := range want.Rows {
		// Table5Row is all scalars — comparable.
		if got.Rows[i] != want.Rows[i] {
			t.Fatalf("row %d differs:\n got %+v\nwant %+v", i, got.Rows[i], want.Rows[i])
		}
	}
	if got.AvgPeak != want.AvgPeak || got.AvgVDD != want.AvgVDD || got.AvgGnd != want.AvgGnd {
		t.Fatal("averages differ")
	}
}
