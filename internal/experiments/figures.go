package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"wavemin/internal/adb"
	"wavemin/internal/bench"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/multimode"
	"wavemin/internal/polarity"
	"wavemin/internal/waveform"
)

// Fig1 characterizes one buffer and one inverter: the mirrored IDD/ISS
// pulses that motivate polarity assignment (paper Fig. 1).
type Fig1 struct {
	Buffer, Inverter cell.Profile
}

// RunFig1 profiles BUF_X8 and INV_X8 at a typical leaf load.
func RunFig1() (*Fig1, error) {
	lib := cell.DefaultLibrary()
	return &Fig1{
		Buffer:   cell.Characterize(lib.MustByName("BUF_X8"), 6, clocktree.NominalVDD),
		Inverter: cell.Characterize(lib.MustByName("INV_X8"), 6, clocktree.NominalVDD),
	}, nil
}

// Format dumps the four waveform tables per cell.
func (f *Fig1) Format() string {
	var b strings.Builder
	dump := func(name string, p cell.Profile) {
		fmt.Fprintf(&b, "== %s (TD %.2f ps, P+ %.1f µA, P- %.1f µA)\n",
			name, p.TD, p.PeakPlus(), p.PeakMinus())
		fmt.Fprintf(&b, "-- IDD @ rising\n%s", p.IDDRise.Table())
		fmt.Fprintf(&b, "-- ISS @ rising\n%s", p.ISSRise.Table())
		fmt.Fprintf(&b, "-- IDD @ falling\n%s", p.IDDFall.Table())
		fmt.Fprintf(&b, "-- ISS @ falling\n%s", p.ISSFall.Table())
	}
	dump(f.Buffer.Cell.Name, f.Buffer)
	dump(f.Inverter.Cell.Name, f.Inverter)
	return b.String()
}

// Fig2Assignment is one row of the 16-assignment enumeration.
type Fig2Assignment struct {
	Polarity []bool  // true = positive (buffer) per leaf
	LeafPeak float64 // peak of the leaf-only accumulated waveform, µA
	AllPeak  float64 // peak including the non-leaf elements, µA
}

// Fig2 reproduces the paper's motivating example: for a 4-leaf tree with
// 2 internal buffers, the assignment minimizing the *leaf-only* peak is
// not the assignment minimizing the *true* (all-node) peak — Observations
// 1 and 2.
type Fig2 struct {
	Assignments []Fig2Assignment
	LeafBest    int // index minimizing LeafPeak
	AllBest     int // index minimizing AllPeak

	// Waveforms for the paper's Fig. 2(c)/(d) panels: the leaf-only and
	// all-node IDD waveforms of the leaf-optimal assignment (c) and of the
	// true optimum (d), at the rising source edge.
	LeafBestLeafWave waveform.Waveform
	LeafBestAllWave  waveform.Waveform
	AllBestLeafWave  waveform.Waveform
	AllBestAllWave   waveform.Waveform
}

// RunFig2 enumerates all 16 polarity assignments of the toy tree.
func RunFig2() (*Fig2, error) {
	lib := cell.DefaultLibrary()
	buf := lib.MustByName("BUF_X8")
	inv := lib.MustByName("INV_X8")
	// Staggered arrivals: two mid buffers with different wire delays, two
	// leaves each; the mid buffers' own pulses skew the total waveform to
	// early times, like the paper's Fig. 2(c).
	tree := clocktree.New(lib.MustByName("BUF_X16"), 25, 25)
	m1 := tree.AddChild(tree.Root(), lib.MustByName("BUF_X8"), 20, 25, 0.05, 12)
	m2 := tree.AddChild(tree.Root(), lib.MustByName("BUF_X8"), 30, 25, 0.25, 40)
	var leaves []clocktree.NodeID
	for i, parent := range []clocktree.NodeID{m1, m1, m2, m2} {
		leaf := tree.AddChild(parent, buf, float64(20+4*i), 20, 0.02+0.06*float64(i), 8+6*float64(i))
		tree.SetSinkCap(leaf, 8)
		leaves = append(leaves, leaf)
	}
	out := &Fig2{}
	apply := func(mask int) {
		for i, leaf := range leaves {
			if mask&(1<<i) == 0 {
				tree.SetCell(leaf, buf)
			} else {
				tree.SetCell(leaf, inv)
			}
		}
	}
	bestLeaf, bestAll := math.Inf(1), math.Inf(1)
	for mask := 0; mask < 16; mask++ {
		apply(mask)
		pol := make([]bool, 4)
		for i := range leaves {
			pol[i] = mask&(1<<i) == 0
		}
		tm := tree.ComputeTiming(clocktree.NominalMode)
		row := Fig2Assignment{Polarity: pol}
		for _, e := range []cell.Edge{cell.Rising, cell.Falling} {
			lIDD, lISS := tree.LeafCurrents(tm, e)
			tIDD, tISS := tree.TreeCurrents(tm, e)
			for _, wv := range []waveform.Waveform{lIDD, lISS} {
				if p, _ := wv.Peak(); p > row.LeafPeak {
					row.LeafPeak = p
				}
			}
			for _, wv := range []waveform.Waveform{tIDD, tISS} {
				if p, _ := wv.Peak(); p > row.AllPeak {
					row.AllPeak = p
				}
			}
		}
		if row.LeafPeak < bestLeaf {
			bestLeaf, out.LeafBest = row.LeafPeak, mask
		}
		if row.AllPeak < bestAll {
			bestAll, out.AllBest = row.AllPeak, mask
		}
		out.Assignments = append(out.Assignments, row)
	}
	// Capture the Fig. 2(c)/(d) waveform panels.
	capture := func(mask int) (leafW, allW waveform.Waveform) {
		apply(mask)
		tm := tree.ComputeTiming(clocktree.NominalMode)
		leafW, _ = tree.LeafCurrents(tm, cell.Rising)
		allW, _ = tree.TreeCurrents(tm, cell.Rising)
		return leafW, allW
	}
	out.LeafBestLeafWave, out.LeafBestAllWave = capture(out.LeafBest)
	out.AllBestLeafWave, out.AllBestAllWave = capture(out.AllBest)
	return out, nil
}

// Format renders the 16-row table of Fig. 2(b) extended with the all-node
// peak.
func (f *Fig2) Format() string {
	w := &tableWriter{}
	w.row(cellf(4, "#"), cellf(14, "assignment"), cellf(12, "leaf-only"), cellf(12, "all-node"))
	for i, a := range f.Assignments {
		var pol []string
		for _, p := range a.Polarity {
			if p {
				pol = append(pol, "P")
			} else {
				pol = append(pol, "N")
			}
		}
		mark := ""
		if i == f.LeafBest {
			mark += " <-leaf-opt"
		}
		if i == f.AllBest {
			mark += " <-true-opt"
		}
		w.row(cellf(4, "%d", i), cellf(14, "(%s)", strings.Join(pol, ",")),
			cellf(12, "%.1f", a.LeafPeak), cellf(12, "%.1f", a.AllPeak)+mark)
	}
	return w.String()
}

// ObservationHolds reports whether the toy demonstrates Observation 1:
// the leaf-optimal assignment is strictly worse than the true optimum on
// the all-node waveform.
func (f *Fig2) ObservationHolds() bool {
	return f.Assignments[f.LeafBest].AllPeak > f.Assignments[f.AllBest].AllPeak+1e-9
}

// Fig3 demonstrates Observation 3: offering ADIs at ADB sites reduces the
// multi-mode peak further (the paper's 26 → 25 toy, on our scale).
type Fig3 struct {
	WithoutADI Golden
	WithADI    Golden
	NumADIs    int
}

// RunFig3 builds a three-mode, two-island toy where every leaf needs an
// ADB, then optimizes with and without ADIs in the library.
func RunFig3() (*Fig3, error) {
	build := func() (*clocktree.Tree, []clocktree.Mode, *cell.Library) {
		lib := cell.DefaultLibrary()
		// Internal nodes live >50 µm from the leaves: the leaf zone's noise
		// is leaf-only, so the polarity choice is what the solver sees.
		tree := clocktree.New(lib.MustByName("BUF_X16"), 25, 100)
		midA := tree.AddChild(tree.Root(), lib.MustByName("BUF_X8"), 23, 90, 0.01, 4)
		midB := tree.AddChild(tree.Root(), lib.MustByName("BUF_X8"), 27, 90, 0.01, 4)
		var leaves []clocktree.NodeID
		for i, parent := range []clocktree.NodeID{midA, midA, midB, midB} {
			leaf := tree.AddChild(parent, lib.MustByName("BUF_X8"), float64(22+2*i), 22, 0.02, 6)
			tree.SetSinkCap(leaf, 8)
			leaves = append(leaves, leaf)
		}
		// Two islands of (mid + two leaves) each; the extra modes slow one
		// island by two cell levels, so every leaf ends up on an ADB site
		// in some mode.
		tree.SetDomainSubtree(midA, "A")
		tree.SetDomainSubtree(midB, "B")
		modes := []clocktree.Mode{
			{Name: "M1", Supplies: map[string]float64{"A": 1.1, "B": 1.1}},
			{Name: "M2", Supplies: map[string]float64{"A": 0.8, "B": 1.1}},
			{Name: "M3", Supplies: map[string]float64{"A": 1.1, "B": 0.8}},
		}
		return tree, modes, lib
	}
	run := func(withADI bool) (Golden, int, error) {
		tree, modes, lib := build()
		cfg := multimode.Config{
			Library: sizingLib(lib),
			ADBCell: lib.MustByName("ADB_X8"),
			Kappa:   4, Samples: 16, Epsilon: 0.01,
			PerModeIntervals: 8, MaxIntersections: 24,
		}
		if withADI {
			cfg.ADICell = lib.MustByName("ADI_X8")
		}
		res, err := multimode.Optimize(context.Background(), tree, modes, cfg)
		if err != nil {
			return Golden{}, 0, err
		}
		if err := multimode.ApplyResult(context.Background(), tree, modes, cfg.Kappa, res); err != nil {
			return Golden{}, 0, err
		}
		g, err := EvaluateModes(tree, modes, nil)
		return g, res.NumADIs, err
	}
	without, _, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("fig3 without ADI: %w", err)
	}
	with, numADIs, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("fig3 with ADI: %w", err)
	}
	return &Fig3{WithoutADI: without, WithADI: with, NumADIs: numADIs}, nil
}

// Format renders the toy comparison.
func (f *Fig3) Format() string {
	return fmt.Sprintf(
		"ADB-only  peak %.1f µA\nwith ADI  peak %.1f µA (%d ADIs assigned)\n",
		f.WithoutADI.Peak, f.WithADI.Peak, f.NumADIs)
}

// Fig6 reproduces the interval-construction example (paper Figs. 5–6):
// the per-sink candidate arrival times and the feasible intervals for
// κ = 5 on the Table II library.
type Fig6 struct {
	Arrivals  map[string][]float64 // cell name → per-sink arrival
	Intervals []polarity.Interval
}

// RunFig6 rebuilds the worked example.
func RunFig6() (*Fig6, error) {
	lib := cell.PaperLibrary()
	buf2 := lib.MustByName("BUF_X2")
	tree := clocktree.New(buf2, 25, 25)
	for i, wd := range []float64{31, 32, 33, 32} {
		leaf := tree.AddChild(tree.Root(), buf2, float64(10+10*i), 10, wd/0.5, 0)
		tree.SetSinkCap(leaf, 0)
	}
	cs := polarity.BuildCandidates(tree, lib, clocktree.NominalMode)
	ivs, err := polarity.FeasibleIntervals(cs, 5)
	if err != nil {
		return nil, err
	}
	out := &Fig6{Arrivals: make(map[string][]float64), Intervals: ivs}
	for _, leaf := range cs.Leaves() {
		for _, c := range cs.ByLeaf[leaf] {
			out.Arrivals[c.Cell.Name] = append(out.Arrivals[c.Cell.Name], c.AT)
		}
	}
	return out, nil
}

// Format renders the grid of Fig. 6.
func (f *Fig6) Format() string {
	w := &tableWriter{}
	names := make([]string, 0, len(f.Arrivals))
	for n := range f.Arrivals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var ats []string
		for _, at := range f.Arrivals[n] {
			ats = append(ats, fmt.Sprintf("%.0f", at))
		}
		w.row(cellf(8, "%s", n), cellf(0, "%s", strings.Join(ats, " ")))
	}
	for _, iv := range f.Intervals {
		w.row(cellf(8, "ival"), cellf(0, "[%.0f, %.0f] dof=%d", iv.Lo, iv.Hi, iv.DegreeOfFreedom()))
	}
	return w.String()
}

// Fig14Point is one feasible intersection's (degree of freedom, peak).
type Fig14Point struct {
	DoF  int
	Peak float64
}

// Fig14 reproduces the degree-of-freedom/noise scatter (paper Fig. 14):
// across feasible intersections of a two-mode design, peak noise (the
// mean optimized zone peak — the max alone saturates on one dominant zone
// for larger circuits) correlates negatively with the intersection's
// degree of freedom.
type Fig14 struct {
	Circuit     string
	Points      []Fig14Point
	Correlation float64 // Pearson r
}

// RunFig14 evaluates every feasible intersection of a benchmark under two
// power modes.
func RunFig14(circuit string, perModeIntervals int) (*Fig14, error) {
	ckt, err := LoadCircuit(circuit)
	if err != nil {
		return nil, err
	}
	domains := bench.AssignDomains(ckt.Tree, ckt.Spec.DieW, ckt.Spec.DieH, 4)
	modes := ckt.Spec.Modes(domains, 2)
	adbCell := ckt.Lib.MustByName("ADB_X8")
	kappa := 16.0
	if !ckt.Tree.MeetsSkew(kappa, modes) {
		if _, err := adb.Insert(context.Background(), ckt.Tree, adbCell, modes, kappa); err != nil {
			return nil, err
		}
	}
	p, err := multimode.NewProblem(ckt.Tree, modes, multimode.Config{
		Library: sizingLib(ckt.Lib), ADBCell: adbCell,
		Kappa: kappa, Samples: 16, Epsilon: 0.05,
		PerModeIntervals: perModeIntervals, IntervalSpread: true,
	})
	if err != nil {
		return nil, err
	}
	out := &Fig14{Circuit: circuit}
	for _, ix := range p.Intersections() {
		res, err := p.OptimizeIntersection(context.Background(), &ix)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Fig14Point{DoF: ix.DoF, Peak: res.MeanZonePeak})
	}
	out.Correlation = pearson(out.Points)
	return out, nil
}

func pearson(pts []Fig14Point) float64 {
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for _, p := range pts {
		mx += float64(p.DoF)
		my += p.Peak
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for _, p := range pts {
		dx, dy := float64(p.DoF)-mx, p.Peak-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Format renders the scatter data.
func (f *Fig14) Format() string {
	w := &tableWriter{}
	w.row(cellf(8, "DoF"), cellf(12, "peak (µA)"))
	for _, p := range f.Points {
		w.row(cellf(8, "%d", p.DoF), cellf(12, "%.1f", p.Peak))
	}
	w.row(cellf(8, "r ="), cellf(12, "%.3f", f.Correlation))
	return w.String()
}
