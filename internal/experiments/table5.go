package experiments

import (
	"context"
	"fmt"

	"wavemin/internal/cell"
	"wavemin/internal/parallel"
	"wavemin/internal/polarity"
)

// Table5Config mirrors the setup of the paper's Table V: κ = 20 ps,
// ε = 0.01, |S| = 158, leaves assigned among BUF_X8/BUF_X16/INV_X8/INV_X16.
type Table5Config struct {
	Circuits     []string
	Kappa        float64
	Samples      int
	Epsilon      float64
	MaxIntervals int // cap on fully optimized intervals per circuit
	// Workers bounds both the per-circuit row fan-out and the solver
	// parallelism inside each optimization. 0 = GOMAXPROCS, 1 = serial;
	// results are identical for every worker count.
	Workers int
}

// DefaultTable5Config returns the paper's parameters over all seven
// benchmarks.
func DefaultTable5Config() Table5Config {
	names := make([]string, 0, 7)
	for _, s := range allSpecs() {
		names = append(names, s.Name)
	}
	return Table5Config{Circuits: names, Kappa: 20, Samples: 158, Epsilon: 0.01, MaxIntervals: 8}
}

// Table5Row is one benchmark's comparison.
type Table5Row struct {
	Name    string
	N, L    int
	PeakMin Golden // ClkPeakMin [27]
	WaveMin Golden // ClkWaveMin
	ImpVDD  float64
	ImpGnd  float64
	ImpPeak float64
	SkewPM  float64 // realized skew, ps
	SkewWM  float64
}

// Table5 is the full result.
type Table5 struct {
	Config                  Table5Config
	Rows                    []Table5Row
	AvgVDD, AvgGnd, AvgPeak float64
}

// sizingLib restricts the default library to the paper's four leaf types.
func sizingLib(lib *cell.Library) *cell.Library {
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		panic(err)
	}
	return sub
}

// RunTable5 compares ClkPeakMin and ClkWaveMin per circuit under the
// golden evaluator.
func RunTable5(cfg Table5Config) (*Table5, error) {
	out := &Table5{Config: cfg}
	rows := make([]Table5Row, len(cfg.Circuits))
	ferr := parallel.ForEach(context.Background(), cfg.Workers, len(cfg.Circuits), func(i int) error {
		name := cfg.Circuits[i]
		ckt, err := LoadCircuit(name)
		if err != nil {
			return err
		}
		row := Table5Row{Name: name, N: ckt.Tree.Len(), L: len(ckt.Tree.Leaves())}
		lib := sizingLib(ckt.Lib)
		base := polarity.Config{
			Library: lib, Kappa: cfg.Kappa, Samples: cfg.Samples,
			Epsilon: cfg.Epsilon, MaxIntervals: cfg.MaxIntervals, Workers: cfg.Workers,
		}
		run := func(algo polarity.Algorithm) (Golden, float64, error) {
			c := base
			c.Algorithm = algo
			res, err := polarity.Optimize(context.Background(), ckt.Tree, c)
			if err != nil {
				return Golden{}, 0, fmt.Errorf("%s/%v: %w", name, algo, err)
			}
			work := ckt.Tree.Clone()
			polarity.Apply(work, res.Assignment)
			g, err := Evaluate(work, base.Mode, ckt.Grid)
			if err != nil {
				return Golden{}, 0, err
			}
			skew := work.ComputeTiming(base.Mode).Skew(work)
			return g, skew, nil
		}
		if row.PeakMin, row.SkewPM, err = run(polarity.ClkPeakMinBaseline); err != nil {
			return err
		}
		if row.WaveMin, row.SkewWM, err = run(polarity.ClkWaveMin); err != nil {
			return err
		}
		row.ImpVDD = improvement(row.PeakMin.VDD, row.WaveMin.VDD)
		row.ImpGnd = improvement(row.PeakMin.Gnd, row.WaveMin.Gnd)
		row.ImpPeak = improvement(row.PeakMin.Peak, row.WaveMin.Peak)
		rows[i] = row
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	out.Rows = rows
	for _, row := range rows {
		out.AvgVDD += row.ImpVDD
		out.AvgGnd += row.ImpGnd
		out.AvgPeak += row.ImpPeak
	}
	n := float64(len(out.Rows))
	if n > 0 {
		out.AvgVDD /= n
		out.AvgGnd /= n
		out.AvgPeak /= n
	}
	return out, nil
}

// Format renders the paper's Table V layout.
func (t *Table5) Format() string {
	w := &tableWriter{}
	w.row(cellf(10, "Circuit"), cellf(5, "n"), cellf(5, "|L|"),
		cellf(9, "PM VDD"), cellf(9, "PM Gnd"), cellf(9, "PM Peak"),
		cellf(9, "WM VDD"), cellf(9, "WM Gnd"), cellf(9, "WM Peak"),
		cellf(8, "VDD %%"), cellf(8, "Gnd %%"), cellf(8, "Peak %%"))
	w.row(cellf(10, ""), cellf(5, ""), cellf(5, ""),
		cellf(9, "(mV)"), cellf(9, "(mV)"), cellf(9, "(mA)"),
		cellf(9, "(mV)"), cellf(9, "(mV)"), cellf(9, "(mA)"),
		cellf(8, ""), cellf(8, ""), cellf(8, ""))
	for _, r := range t.Rows {
		w.row(cellf(10, "%s", r.Name), cellf(5, "%d", r.N), cellf(5, "%d", r.L),
			cellf(9, "%.2f", mV(r.PeakMin.VDD)), cellf(9, "%.2f", mV(r.PeakMin.Gnd)), cellf(9, "%.3f", mA(r.PeakMin.Peak)),
			cellf(9, "%.2f", mV(r.WaveMin.VDD)), cellf(9, "%.2f", mV(r.WaveMin.Gnd)), cellf(9, "%.3f", mA(r.WaveMin.Peak)),
			cellf(8, "%.2f", r.ImpVDD), cellf(8, "%.2f", r.ImpGnd), cellf(8, "%.2f", r.ImpPeak))
	}
	w.row(cellf(10, "Average"), cellf(5, ""), cellf(5, ""),
		cellf(9, ""), cellf(9, ""), cellf(9, ""),
		cellf(9, ""), cellf(9, ""), cellf(9, ""),
		cellf(8, "%.2f", t.AvgVDD), cellf(8, "%.2f", t.AvgGnd), cellf(8, "%.2f", t.AvgPeak))
	return w.String()
}
