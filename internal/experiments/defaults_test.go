package experiments

import (
	"strings"
	"testing"
)

func TestDefaultConfigsCoverAllCircuits(t *testing.T) {
	if got := len(DefaultTable5Config().Circuits); got != 7 {
		t.Fatalf("table5 circuits %d", got)
	}
	if got := len(DefaultTable6Config().Circuits); got != 7 {
		t.Fatalf("table6 circuits %d", got)
	}
	if got := len(DefaultTable7Config().Circuits); got != 7 {
		t.Fatalf("table7 circuits %d", got)
	}
	if got := len(DefaultMCConfig().Circuits); got != 7 {
		t.Fatalf("mc circuits %d", got)
	}
	// Paper parameters.
	if c := DefaultTable5Config(); c.Kappa != 20 || c.Samples != 158 || c.Epsilon != 0.01 {
		t.Fatalf("table5 defaults %+v", c)
	}
	if c := DefaultMCConfig(); c.Kappa != 100 || c.Sigma != 0.05 || c.Instances != 1000 {
		t.Fatalf("mc defaults %+v", c)
	}
	if c := DefaultTable6Config(); len(c.SampleSweeps) != 3 || c.SampleSweeps[2] != 158 {
		t.Fatalf("table6 sweeps %+v", c.SampleSweeps)
	}
}

func TestFormatsRenderSomething(t *testing.T) {
	// Exercise the Format paths on small real results.
	t5, err := RunTable5(Table5Config{Circuits: []string{"s15850"}, Kappa: 20, Samples: 8, Epsilon: 0.1, MaxIntervals: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out := t5.Format(); !strings.Contains(out, "Average") {
		t.Fatal("table5 format missing average")
	}
	f1, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	if out := f1.Format(); !strings.Contains(out, "IDD @ rising") {
		t.Fatal("fig1 format missing sections")
	}
	f2, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	if out := f2.Format(); !strings.Contains(out, "<-true-opt") {
		t.Fatal("fig2 format missing optimum marker")
	}
	f3, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if out := f3.Format(); !strings.Contains(out, "ADI") {
		t.Fatal("fig3 format missing")
	}
	f6, err := RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if out := f6.Format(); !strings.Contains(out, "ival") {
		t.Fatal("fig6 format missing intervals")
	}
	f14, err := RunFig14("s15850", 4)
	if err != nil {
		t.Fatal(err)
	}
	if out := f14.Format(); !strings.Contains(out, "r =") {
		t.Fatal("fig14 format missing correlation")
	}
	mc, err := RunMonteCarlo(MCConfig{Circuits: []string{"s15850"}, Kappa: 100, Samples: 8,
		Epsilon: 0.1, Sigma: 0.05, Correlation: 0.8, Instances: 20, Seed: 1, MaxIntervals: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out := mc.Format(); !strings.Contains(out, "yield") {
		t.Fatal("mc format missing yields")
	}
	t7, err := RunTable7(Table7Config{Circuits: []string{"s15850"}, SkewBounds: []float64{16},
		NumModes: 2, Samples: 8, Epsilon: 0.1, MaxIntersections: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out := t7.Format(); !strings.Contains(out, "Average") {
		t.Fatal("table7 format missing average")
	}
	t6, err := RunTable6(Table6Config{Circuits: []string{"s15850"}, Kappa: 20, Epsilon: 0.1,
		SampleSweeps: []int{4}, FastSamples: 4, MaxIntervals: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out := t6.Format(); !strings.Contains(out, "Fast") {
		t.Fatal("table6 format missing fast column")
	}
	t1, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if out := t1.Format(); !strings.Contains(out, "#Invs") {
		t.Fatal("table1 format missing header")
	}
}
