package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wavemin"
	"wavemin/internal/jobq"
)

// testSpec synthesizes a small design and wraps it in a JobSpec — the
// payload every dispatch test ships around. solverWorkers lands in
// Config.Workers (results are bitwise identical for every value).
func testSpec(t testing.TB, n, solverWorkers int, trace bool) *JobSpec {
	t.Helper()
	sinks := make([]wavemin.Sink, 0, n)
	for i := 0; i < n; i++ {
		sinks = append(sinks, wavemin.Sink{
			X:   float64(15 + (i%4)*10),
			Y:   float64(15 + (i/4)*10),
			Cap: 8,
		})
	}
	d, err := wavemin.New(sinks)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveTree(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := wavemin.Config{Samples: 16, MaxIntervals: 2, Workers: solverWorkers}
	key, err := d.CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &JobSpec{
		Tree:   json.RawMessage(buf.Bytes()),
		Config: cfg,
		Trace:  trace,
		Key:    key,
	}
}

// referenceBytes solves the spec once, uninterrupted and in-process —
// the canonical bytes every dispatched/requeued execution must match.
func referenceBytes(t testing.TB, spec *JobSpec) []byte {
	t.Helper()
	ref := *spec
	ref.Trace = false // the reference needs only the result bytes
	out, err := ExecuteSpec(context.Background(), &ref, 0)
	if err != nil {
		t.Fatalf("reference ExecuteSpec: %v", err)
	}
	return out.ResultJSON
}

// testCoord is a coordinator with its queue and an HTTP front for
// workers to join.
type testCoord struct {
	t  *testing.T
	q  *jobq.Queue
	c  *Coordinator
	ts *httptest.Server
}

func newTestCoord(t *testing.T, queueWorkers int, opts Options) *testCoord {
	t.Helper()
	q := jobq.New(64, queueWorkers)
	c := NewCoordinator(q, opts)
	mux := http.NewServeMux()
	c.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return &testCoord{t: t, q: q, c: c, ts: ts}
}

// submit enqueues a spec with the given deadline and returns its ticket.
func (tc *testCoord) submit(spec *JobSpec, timeout time.Duration) *jobq.Ticket {
	tc.t.Helper()
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		tc.t.Cleanup(cancel)
		spec = cloneSpec(spec)
		spec.Deadline = time.Now().Add(timeout)
	}
	tk, err := tc.c.Submit(ctx, jobq.Normal, spec, nil, nil)
	if err != nil {
		tc.t.Fatalf("Submit: %v", err)
	}
	return tk
}

func cloneSpec(spec *JobSpec) *JobSpec {
	c := *spec
	return &c
}

// fleet manages live workers for chaos tests: spawn, kill, respawn.
type fleet struct {
	t     *testing.T
	tc    *testCoord
	opts  WorkerOptions
	mu    sync.Mutex
	next  int
	live  []*fleetWorker
	group sync.WaitGroup
}

type fleetWorker struct {
	w    *Worker
	done chan struct{}
}

func newFleet(t *testing.T, tc *testCoord, opts WorkerOptions) *fleet {
	t.Helper()
	opts.Coordinator = tc.ts.URL
	if opts.PollWait == 0 {
		opts.PollWait = 200 * time.Millisecond
	}
	f := &fleet{t: t, tc: tc, opts: opts}
	t.Cleanup(f.killAll)
	return f
}

// spawn starts one worker and returns it.
func (f *fleet) spawn() *fleetWorker {
	f.mu.Lock()
	f.next++
	id := f.opts.ID
	if id == "" {
		id = "w"
	}
	opts := f.opts
	opts.ID = id + "-" + itoa(f.next)
	f.mu.Unlock()

	w, err := NewWorker(opts)
	if err != nil {
		f.t.Fatalf("NewWorker: %v", err)
	}
	fw := &fleetWorker{w: w, done: make(chan struct{})}
	f.group.Add(1)
	go func() {
		defer f.group.Done()
		defer close(fw.done)
		_ = w.Run(context.Background())
	}()
	f.mu.Lock()
	f.live = append(f.live, fw)
	f.mu.Unlock()
	return fw
}

// killOne kills the i-th live worker (mod fleet size) and waits for its
// Run loop to exit. Returns false when the fleet is empty.
func (f *fleet) killOne(i int) bool {
	f.mu.Lock()
	if len(f.live) == 0 {
		f.mu.Unlock()
		return false
	}
	idx := i % len(f.live)
	fw := f.live[idx]
	f.live = append(f.live[:idx], f.live[idx+1:]...)
	f.mu.Unlock()
	fw.w.Kill()
	<-fw.done
	return true
}

// killAll tears the whole fleet down and waits for every Run loop.
func (f *fleet) killAll() {
	f.mu.Lock()
	live := f.live
	f.live = nil
	f.mu.Unlock()
	for _, fw := range live {
		fw.w.Kill()
	}
	f.group.Wait()
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

// awaitTicket waits for a ticket with a test-sized timeout.
func awaitTicket(t *testing.T, tk *jobq.Ticket, timeout time.Duration) (any, error) {
	t.Helper()
	select {
	case <-tk.Done():
	case <-time.After(timeout):
		t.Fatal("ticket did not resolve in time")
	}
	return tk.Outcome()
}
