package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wavemin/internal/jobq"
)

// postRaw fires a raw body at a dispatch endpoint and returns the
// response.
func postRaw(t testing.TB, base, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		t.Fatalf("POST %s: read: %v", path, err)
	}
	return resp.StatusCode, rb
}

// assertStructured4xx checks that an error response carries the
// {"error":{"code","message"}} shape.
func assertStructured4xx(t testing.TB, path string, status int, body []byte) {
	t.Helper()
	if status < 400 || status >= 500 {
		t.Fatalf("%s: status %d, want structured 4xx: %s", path, status, body)
	}
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" {
		t.Fatalf("%s: status %d with unstructured error body: %s", path, status, body)
	}
}

// dispatchPaths are the protocol endpoints, indexed by the fuzzer's
// endpoint selector.
var dispatchPaths = []string{
	"/v1/dispatch/lease",
	"/v1/dispatch/heartbeat",
	"/v1/dispatch/complete",
	"/v1/dispatch/fail",
}

// TestLeaseProtocolAbuse is the deterministic twin of FuzzLeaseProtocol:
// every named abuse — stale lease IDs, double completion, completion
// after lease expiry, replayed heartbeats, malformed bodies — gets a
// structured 4xx, and none of them can double-apply a result.
func TestLeaseProtocolAbuse(t *testing.T) {
	spec := testSpec(t, 8, 0, false)
	tc := newTestCoord(t, 1, Options{
		LeaseTTL:      100 * time.Millisecond,
		SweepInterval: time.Hour, // expiry is driven manually below
		MaxAttempts:   5,
	})
	base := tc.ts.URL

	t.Run("malformed bodies", func(t *testing.T) {
		bodies := []string{"", "{", "null", "[]", `"string"`, `{"leaseId":42}`, strings.Repeat("[", 1000)}
		for _, path := range dispatchPaths {
			for _, body := range bodies {
				status, rb := postRaw(t, base, path, []byte(body))
				assertStructured4xx(t, path, status, rb)
			}
		}
	})

	t.Run("stale and fabricated lease IDs", func(t *testing.T) {
		for _, path := range dispatchPaths[1:] {
			msg := map[string]any{"workerId": "abuser", "leaseId": "L-99999999"}
			if path == "/v1/dispatch/complete" {
				msg["outcome"] = map[string]any{"resultJson": json.RawMessage(`{"fake":true}`)}
			}
			b, _ := json.Marshal(msg)
			status, rb := postRaw(t, base, path, b)
			if status != http.StatusConflict {
				t.Fatalf("%s with fabricated lease: status %d (%s), want 409", path, status, rb)
			}
			assertStructured4xx(t, path, status, rb)
		}
	})

	t.Run("double complete", func(t *testing.T) {
		tk := tc.submit(spec, time.Minute)
		lease := leaseViaHTTP(t, base)
		out, err := ExecuteSpec(context.Background(), spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		first, _ := json.Marshal(completeRequest{WorkerID: "w", LeaseID: lease.LeaseID, Outcome: out})
		if status, rb := postRaw(t, base, "/v1/dispatch/complete", first); status != http.StatusOK {
			t.Fatalf("first complete: status %d: %s", status, rb)
		}
		// Replay: same lease, different payload. Must be rejected and must
		// not overwrite the applied result.
		forged := *out
		forged.ResultJSON = json.RawMessage(`{"forged":true}`)
		second, _ := json.Marshal(completeRequest{WorkerID: "w", LeaseID: lease.LeaseID, Outcome: &forged})
		status, rb := postRaw(t, base, "/v1/dispatch/complete", second)
		if status != http.StatusConflict {
			t.Fatalf("double complete: status %d (%s), want 409", status, rb)
		}
		res, err := awaitTicket(t, tk, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.(*Outcome).ResultJSON, out.ResultJSON) {
			t.Fatal("replayed completion overwrote the applied result")
		}
	})

	t.Run("complete after lease expiry", func(t *testing.T) {
		tk := tc.submit(spec, time.Minute)
		lease := leaseViaHTTP(t, base)
		time.Sleep(150 * time.Millisecond) // past the 100ms TTL
		if n := tc.q.ExpireLeases(); n != 1 {
			t.Fatalf("ExpireLeases = %d, want 1", n)
		}
		out, err := ExecuteSpec(context.Background(), spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		late, _ := json.Marshal(completeRequest{WorkerID: "w", LeaseID: lease.LeaseID, Outcome: out})
		status, rb := postRaw(t, base, "/v1/dispatch/complete", late)
		if status != http.StatusConflict {
			t.Fatalf("post-expiry complete: status %d (%s), want 409", status, rb)
		}
		// The requeued job is still pending — resolve it cleanly so the
		// queue drains.
		release := leaseViaHTTP(t, base)
		ok, _ := json.Marshal(completeRequest{WorkerID: "w", LeaseID: release.LeaseID, Outcome: out})
		if status, rb := postRaw(t, base, "/v1/dispatch/complete", ok); status != http.StatusOK {
			t.Fatalf("re-complete: status %d: %s", status, rb)
		}
		if _, err := awaitTicket(t, tk, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if got := tk.Attempts(); got != 2 {
			t.Errorf("attempts = %d, want 2", got)
		}
	})

	t.Run("replayed heartbeat after resolve", func(t *testing.T) {
		tk := tc.submit(spec, time.Minute)
		lease := leaseViaHTTP(t, base)
		out, err := ExecuteSpec(context.Background(), spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		done, _ := json.Marshal(completeRequest{WorkerID: "w", LeaseID: lease.LeaseID, Outcome: out})
		if status, _ := postRaw(t, base, "/v1/dispatch/complete", done); status != http.StatusOK {
			t.Fatal("complete failed")
		}
		hb, _ := json.Marshal(heartbeatRequest{WorkerID: "w", LeaseID: lease.LeaseID})
		status, rb := postRaw(t, base, "/v1/dispatch/heartbeat", hb)
		if status != http.StatusConflict {
			t.Fatalf("heartbeat after resolve: status %d (%s), want 409", status, rb)
		}
		if _, err := awaitTicket(t, tk, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	})
}

// leaseViaHTTP performs one real lease through the HTTP protocol.
func leaseViaHTTP(t testing.TB, base string) *leaseResponse {
	t.Helper()
	b, _ := json.Marshal(leaseRequest{WorkerID: "w", WaitMs: 2000})
	status, rb := postRaw(t, base, "/v1/dispatch/lease", b)
	if status != http.StatusOK {
		t.Fatalf("lease: status %d: %s", status, rb)
	}
	var lr leaseResponse
	if err := json.Unmarshal(rb, &lr); err != nil {
		t.Fatalf("lease response: %v", err)
	}
	return &lr
}

// fuzzEnv is the long-lived target FuzzLeaseProtocol hammers: one
// coordinator with a few real leases taken out, so fuzzed inputs can hit
// live, stale, and fabricated lease state alike.
type fuzzEnv struct {
	ts       *httptest.Server
	leaseIDs []string
}

var (
	fuzzOnce sync.Once
	fuzzE    *fuzzEnv
)

func getFuzzEnv(t testing.TB) *fuzzEnv {
	fuzzOnce.Do(func() {
		q := jobq.New(64, 1)
		c := NewCoordinator(q, Options{
			LeaseTTL:      time.Hour, // leases stay live for the whole fuzz run
			SweepInterval: time.Hour,
			MaxAttempts:   3,
		})
		mux := http.NewServeMux()
		c.Register(mux)
		ts := httptest.NewServer(mux)

		// A few real jobs: one lease left live, one completed (stale ID),
		// plus jobs left queued for fuzzed lease calls to grab. The specs
		// are never executed — the fuzzer only drives the protocol.
		env := &fuzzEnv{ts: ts}
		for i := 0; i < 4; i++ {
			payload := &JobSpec{Tree: json.RawMessage(`{}`), Key: fmt.Sprintf("k%d", i)}
			if _, err := c.Submit(context.Background(), jobq.Normal, payload, nil, nil); err != nil {
				panic(err)
			}
		}
		live := leaseViaHTTP(t, ts.URL)
		env.leaseIDs = append(env.leaseIDs, live.LeaseID)
		done := leaseViaHTTP(t, ts.URL)
		body, _ := json.Marshal(completeRequest{WorkerID: "w", LeaseID: done.LeaseID,
			Outcome: &Outcome{ResultJSON: json.RawMessage(`{"ok":true}`)}})
		if status, rb := postRaw(t, ts.URL, "/v1/dispatch/complete", body); status != http.StatusOK {
			panic(fmt.Sprintf("fuzz env complete: %d %s", status, rb))
		}
		env.leaseIDs = append(env.leaseIDs, done.LeaseID, "L-00000000", "L-99999999", "")
		fuzzE = env
	})
	return fuzzE
}

// FuzzLeaseProtocol throws malformed and replayed protocol messages at
// the coordinator's handlers: arbitrary bodies, bodies with valid shape
// but stale/live/fabricated lease IDs, double completions. Invariants:
// no panic (a crash fails the fuzz), never a 5xx, and every error is the
// structured {"error":{code,message}} shape.
func FuzzLeaseProtocol(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte(`{"workerId":"w","waitMs":0}`))
	f.Add(uint8(1), uint8(0), []byte(`{"workerId":"w","leaseId":"L-00000001"}`))
	f.Add(uint8(2), uint8(1), []byte(`{"workerId":"w","leaseId":"L-00000001","outcome":{"resultJson":{"x":1}}}`))
	f.Add(uint8(3), uint8(2), []byte(`{"workerId":"w","leaseId":"L-00000002","retryable":true}`))
	f.Add(uint8(2), uint8(3), []byte(`{`))
	f.Add(uint8(1), uint8(4), []byte(`null`))
	f.Add(uint8(0), uint8(0), []byte(`{"workerId":"w","waitMs":-5}`))
	f.Add(uint8(3), uint8(1), []byte(`[[[[`))

	f.Fuzz(func(t *testing.T, endpoint, idSel uint8, body []byte) {
		env := getFuzzEnv(t)
		path := dispatchPaths[int(endpoint)%len(dispatchPaths)]

		// Half the runs: fire the raw bytes as-is. Other half: graft a
		// known lease ID (live, resolved, fabricated — idSel picks) into
		// an otherwise well-formed message, so replay/stale handling gets
		// exercised with realistic shapes too.
		payload := body
		if idSel%2 == 1 {
			id := env.leaseIDs[int(idSel)%len(env.leaseIDs)]
			msg := map[string]any{"workerId": "fuzz", "leaseId": id}
			if path == dispatchPaths[2] {
				msg["outcome"] = map[string]any{"resultJson": json.RawMessage(`{"fuzz":true}`)}
			}
			payload, _ = json.Marshal(msg)
		}
		if path == dispatchPaths[0] {
			// Never long-poll in a fuzz iteration: force waitMs 0 by using
			// the raw body only when it cannot wait (malformed bodies 400
			// out before waiting; valid ones may name a wait, so rewrite).
			var lr leaseRequest
			if err := json.Unmarshal(payload, &lr); err == nil && lr.WaitMs != 0 {
				lr.WaitMs = 0
				payload, _ = json.Marshal(lr)
			}
		}

		resp, err := http.Post(env.ts.URL+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		rb, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()

		if resp.StatusCode >= 500 {
			t.Fatalf("%s: 5xx (%d) on fuzzed input %q: %s", path, resp.StatusCode, payload, rb)
		}
		if resp.StatusCode >= 400 {
			assertStructured4xx(t, path, resp.StatusCode, rb)
		}
	})
}

// TestWireBodyBoundConfigurable pins Options.MaxWireBytes: every
// protocol endpoint rejects bodies past the configured bound with a
// structured 413 before decoding, while messages inside the bound keep
// flowing on the same coordinator.
func TestWireBodyBoundConfigurable(t *testing.T) {
	spec := testSpec(t, 8, 0, false)
	tc := newTestCoord(t, 1, Options{
		LeaseTTL:      time.Minute,
		SweepInterval: time.Hour,
		MaxAttempts:   3,
		MaxWireBytes:  32 << 10,
	})
	base := tc.ts.URL

	oversized, _ := json.Marshal(map[string]any{
		"workerId": "w",
		"leaseId":  "L-00000001",
		"padding":  strings.Repeat("x", 64<<10),
	})
	for _, path := range dispatchPaths {
		status, rb := postRaw(t, base, path, oversized)
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status %d (%s), want 413", path, status, rb)
		}
		assertStructured4xx(t, path, status, rb)
		var e struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if json.Unmarshal(rb, &e); e.Error.Code != "too_large" {
			t.Fatalf("%s oversized body: code %q, want too_large", path, e.Error.Code)
		}
	}

	// The bound rejects, it does not wedge: a normal-sized exchange on the
	// same coordinator still completes end to end.
	tk := tc.submit(spec, time.Minute)
	lease := leaseViaHTTP(t, base)
	out, err := ExecuteSpec(context.Background(), spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	done, _ := json.Marshal(completeRequest{WorkerID: "w", LeaseID: lease.LeaseID, Outcome: out})
	if status, rb := postRaw(t, base, "/v1/dispatch/complete", done); status != http.StatusOK {
		t.Fatalf("in-bound complete: status %d: %s", status, rb)
	}
	if _, err := awaitTicket(t, tk, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}
