// Package dispatch is the wavemind coordinator/worker layer: it lets
// separate `wavemind -role=worker` processes pull optimization jobs from
// a coordinator's queue (internal/jobq) over a small HTTP protocol —
// lease, heartbeat, complete, fail — so one service instance can fan
// WaveMin solves out across a fleet.
//
// The protocol is pull-based and lease-guarded. A worker leases the next
// job, heartbeats while it solves, and completes (or fails) the lease.
// The coordinator requeues any job whose lease heartbeats lapse — a
// crashed or partitioned worker just looks like a lapsed lease — and
// counts attempts against a bounded retry budget before failing the job
// with a structured *jobq.RetryExhaustedError. Stale lease IDs (expired,
// requeued, already resolved) are rejected on every mutation, so a
// delayed or replayed completion can never double-apply a result.
//
// The execution contract matches local serving exactly: per-job
// deadlines keep ticking while a job is queued or leased, degraded
// results are never cached, and the canonical result bytes produced by
// ExecuteSpec are bitwise identical wherever and however often the job
// runs — the worker re-derives the design from the same canonical tree
// bytes, and wall-clock fields (Runtime, Stats) are zeroed before
// marshaling. A requeued job therefore returns exactly the bytes an
// uninterrupted run would have produced.
package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"wavemin"
	"wavemin/internal/jobq"
	"wavemin/internal/obs"
	"wavemin/internal/yield"
)

// JobSpec is the self-contained, serializable description of one
// optimization job — everything a worker needs to reproduce the solve
// bit-for-bit: the canonical tree bytes, the effective config, and the
// mode list, exactly as the coordinator validated them.
type JobSpec struct {
	// Tree is the clock tree in the wavemin-clocktree-v1 JSON format.
	Tree json.RawMessage `json:"tree"`
	// Config is the effective (validated, server-capped) configuration.
	Config wavemin.Config `json:"config"`
	// Modes is the power-mode list; empty means single-mode nominal.
	Modes []wavemin.Mode `json:"modes,omitempty"`
	// Trace asks the executor to capture an obs trace of the solve.
	Trace bool `json:"trace,omitempty"`
	// Key is the canonical cache key of (tree, config, modes), carried so
	// both sides can verify they agree on the problem identity.
	Key string `json:"key"`
	// Deadline is the job's absolute deadline. It keeps ticking while the
	// job is queued or leased; a worker must bound its solve by it. Zero
	// means no deadline.
	Deadline time.Time `json:"deadline"`
	// JobID is the submitting server's public job identifier. It rides in
	// the spec so a coordinator that crashes and replays its journal can
	// rebuild its job registry under the same IDs clients are polling.
	JobID string `json:"jobId,omitempty"`
	// NoCache mirrors the request's cache opt-out, so a recovered job
	// keeps the caching policy it was submitted with.
	NoCache bool `json:"noCache,omitempty"`

	// Yield, when non-nil, makes this spec a Monte Carlo sample chunk of
	// a parent yield job instead of an optimization: the executor runs
	// yield.ExecuteChunk over the chunk's own tree and returns the
	// marshaled yield.ChunkStats as ResultJSON. Chunk specs ride the same
	// lease protocol as full jobs (heartbeats, requeues, bounded retries)
	// but are submitted as sub-leases — never journaled, never cached —
	// because the parent re-derives them on recovery and their bytes are
	// already a pure function of the chunk identity. The spec's Tree /
	// Config / Modes fields are unused; the chunk carries its own tree.
	Yield *yield.ChunkSpec `json:"yield,omitempty"`
}

// Outcome is the terminal result of a successfully completed job: the
// canonical result bytes plus the decoration the job registry shows.
type Outcome struct {
	// ResultJSON is the canonical marshaled wavemin.Result: Stats nil and
	// Runtime zero, so the bytes are a pure function of the JobSpec.
	ResultJSON json.RawMessage `json:"resultJson"`
	// AlgorithmUsed / Degraded mirror the Result fields of the same name.
	AlgorithmUsed string `json:"algorithmUsed"`
	Degraded      bool   `json:"degraded"`
	// TraceEvents is the executor's serialized obs trace when the spec
	// asked for one; the coordinator stitches it under its job span.
	TraceEvents []obs.Event `json:"traceEvents,omitempty"`

	// Zones is every zone solution the run replayed or produced (zone
	// content key → encoded zonecache.Solution), present only when the
	// spec's Config.ECO asked for zone recording and the result was not
	// degraded. Workers have no shared zone store, so the solutions ride
	// home with the outcome; the coordinator persists them and chains
	// later deltas off them. ZonesReused / ZonesResolved mirror the
	// Result accounting for the job registry's decoration.
	Zones         map[string][]byte `json:"zones,omitempty"`
	ZonesReused   int               `json:"zonesReused,omitempty"`
	ZonesResolved int               `json:"zonesResolved,omitempty"`
}

// RemoteError is a structured, wire-serializable job failure reported by
// a worker (or synthesized by the coordinator).
type RemoteError struct {
	Code    string `json:"code"`    // "expired", "solver_failed", "bad_spec"
	Message string `json:"message"` // human-readable cause
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("dispatch: %s: %s", e.Code, e.Message)
}

// ExecuteSpec runs one JobSpec to completion: it reconstructs the design
// from the canonical tree bytes, applies the modes, bounds the solve by
// ctx and the spec deadline, and marshals the canonical result bytes.
//
// The returned Outcome is deterministic: Runtime and Stats — the only
// wall-clock-dependent Result fields — are zeroed before marshaling, so
// every execution of the same spec, on any machine at any attempt,
// produces identical ResultJSON. solverWorkers, when positive, caps the
// solver's parallelism without affecting the bytes (the solvers are
// bitwise worker-count independent).
func ExecuteSpec(ctx context.Context, spec *JobSpec, solverWorkers int) (*Outcome, error) {
	if spec.Yield != nil {
		return executeYieldChunk(ctx, spec)
	}
	design, err := wavemin.LoadTree(bytes.NewReader(spec.Tree))
	if err != nil {
		return nil, &RemoteError{Code: "bad_spec", Message: fmt.Sprintf("tree: %v", err)}
	}
	if len(spec.Modes) > 0 {
		if err := design.SetModes(spec.Modes); err != nil {
			return nil, &RemoteError{Code: "bad_spec", Message: fmt.Sprintf("modes: %v", err)}
		}
	}
	cfg := spec.Config
	if solverWorkers > 0 && (cfg.Workers == 0 || cfg.Workers > solverWorkers) {
		cfg.Workers = solverWorkers
	}

	if !spec.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, spec.Deadline)
		defer cancel()
	}

	var tr *obs.Trace
	var mem *obs.Memory
	if spec.Trace {
		mem = &obs.Memory{}
		tr = obs.New(obs.Options{})
		tr.AttachSink(mem)
		ctx = obs.Into(ctx, tr)
	}

	res, err := design.Optimize(ctx, cfg)
	if ferr := tr.Flush(); ferr != nil && err == nil {
		err = fmt.Errorf("trace flush: %w", ferr)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, &RemoteError{Code: "expired", Message: err.Error()}
		}
		return nil, &RemoteError{Code: "solver_failed", Message: err.Error()}
	}

	// Canonical bytes: strip every wall-clock-dependent field so the
	// marshaled result is a pure function of the spec. The local (PR 4)
	// path keeps Runtime because it never re-executes; the dispatch path
	// must survive requeues and re-execution byte-identically.
	res.Stats = nil
	res.Runtime = 0
	blob, err := json.Marshal(res)
	if err != nil {
		return nil, &RemoteError{Code: "solver_failed", Message: fmt.Sprintf("marshal result: %v", err)}
	}
	out := &Outcome{
		ResultJSON:    blob,
		AlgorithmUsed: res.AlgorithmUsed,
		Degraded:      res.Degraded,
	}
	// Zone solutions travel with the outcome only for clean results: a
	// degraded run's zones must never seed a future delta (the base
	// contract the server's 409 enforces). The accounting fields are
	// deterministic per spec — the seeds are part of the spec, so reuse
	// counts replay identically on every attempt.
	if spec.Config.ECO != nil && !res.Degraded {
		out.Zones = res.Zones
		out.ZonesReused = res.ZonesReused
		out.ZonesResolved = res.ZonesResolved
	}
	if mem != nil {
		out.TraceEvents = mem.Events()
	}
	return out, nil
}

// AlgorithmYieldChunk decorates chunk outcomes so the coordinator (and a
// curious human reading a journal) can tell them from optimization runs.
const AlgorithmYieldChunk = "yield-chunk"

// executeYieldChunk runs a yield sample chunk. The outcome's ResultJSON
// is the marshaled yield.ChunkStats — deterministic by the chunk seeding
// contract, so requeues and retries reproduce identical bytes just like
// optimization jobs.
func executeYieldChunk(ctx context.Context, spec *JobSpec) (*Outcome, error) {
	if !spec.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, spec.Deadline)
		defer cancel()
	}
	st, err := yield.ExecuteChunk(ctx, spec.Yield)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, &RemoteError{Code: "expired", Message: err.Error()}
		}
		return nil, &RemoteError{Code: "bad_spec", Message: err.Error()}
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return nil, &RemoteError{Code: "solver_failed", Message: fmt.Sprintf("marshal chunk stats: %v", err)}
	}
	return &Outcome{ResultJSON: blob, AlgorithmUsed: AlgorithmYieldChunk}, nil
}

// --- trace stitching ------------------------------------------------------

// TraceObserver builds the dispatch span tree of one job from its lease
// events and returns a jobq event callback. The tree is deterministic
// content: a "dispatch" root span with one "attempt" child per lease
// grant, each annotated with the attempt number, execution mode, and
// outcome — and, on completion, the worker's own trace adopted under the
// final attempt span. Worker identities and lease IDs never enter the
// span content, so StripTiming(events) is byte-identical however many
// workers served the job.
//
// The callback runs under the jobq lock (see jobq.SubmitLeasable): it
// touches only the trace, never the queue.
func TraceObserver(tr *obs.Trace) func(jobq.LeaseEvent) {
	if tr == nil {
		return nil
	}
	root := tr.Start("dispatch")
	var cur *obs.Span
	slot := 0
	return func(ev jobq.LeaseEvent) {
		switch ev.Kind {
		case jobq.LeaseGranted:
			cur = root.ChildAt(slot, "attempt")
			slot++
			cur.SetAttr("attempt", fmt.Sprintf("%d", ev.Attempt))
			if ev.Local {
				cur.SetAttr("mode", "local")
			} else {
				cur.SetAttr("mode", "remote")
			}
		case jobq.LeaseRequeued:
			cur.SetAttr("outcome", "requeued")
			cur.End()
			cur = nil
		case jobq.LeaseCompleted:
			if out, ok := ev.Result.(*Outcome); ok && cur != nil && len(out.TraceEvents) > 0 {
				cur.AdoptAt(0, out.TraceEvents)
			}
			cur.SetAttr("outcome", "ok")
			cur.End()
			root.SetAttr("outcome", "ok")
			root.End()
		case jobq.LeaseFailed:
			cur.SetAttr("outcome", "failed")
			cur.End()
			root.SetAttr("outcome", "failed")
			root.End()
		case jobq.LeaseExpired:
			if cur != nil {
				cur.SetAttr("outcome", "expired")
				cur.End()
			}
			root.SetAttr("outcome", "expired")
			root.End()
		case jobq.LeaseExhausted:
			root.SetAttr("outcome", "exhausted")
			root.SetAttr("attempts", fmt.Sprintf("%d", ev.Attempt))
			root.End()
		}
	}
}

// composeObservers chains lease-event callbacks, skipping nils.
func composeObservers(fns ...func(jobq.LeaseEvent)) func(jobq.LeaseEvent) {
	var live []func(jobq.LeaseEvent)
	for _, fn := range fns {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev jobq.LeaseEvent) {
		for _, fn := range live {
			fn(ev)
		}
	}
}
