// Golden-file test for the dispatch span tree: lease, requeue, and
// retry events stitched with the worker's solver trace, rendered through
// obs.StripTiming. This extends the root-package determinism test
// (TestParallelDeterminismTrace) across the dispatch layer: the stripped
// bytes must be identical at every solver worker count, and identical to
// the pinned golden — worker identities, lease IDs, and wall clocks must
// never leak into span content.
package dispatch

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wavemin/internal/jobq"
	"wavemin/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the testdata goldens from current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/dispatch -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// dispatchTraceBytes runs one fully scripted dispatch lifecycle — lease,
// heartbeat lapse, requeue, re-lease, complete — and returns the job's
// stripped trace bytes. Everything nondeterministic is under manual
// control: leases are taken directly off the queue (no real workers, no
// goroutine races) and expiry is driven explicitly.
func dispatchTraceBytes(t *testing.T, solverWorkers int) []byte {
	t.Helper()
	spec := testSpec(t, 12, solverWorkers, true)

	q := jobq.New(8, 1)
	c := NewCoordinator(q, Options{
		LeaseTTL:      time.Millisecond, // lapses on the first sweep below
		SweepInterval: time.Hour,        // sweeps are manual
		MaxAttempts:   3,
	})
	t.Cleanup(c.Close)

	tr := obs.New(obs.Options{})
	tk, err := c.Submit(context.Background(), jobq.Normal, spec, tr, nil)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Attempt 1: leased, heartbeats lapse, requeued.
	if _, ok := q.Lease(); !ok {
		t.Fatal("first lease: no job")
	}
	time.Sleep(5 * time.Millisecond)
	if n := q.ExpireLeases(); n != 1 {
		t.Fatalf("ExpireLeases = %d, want 1", n)
	}

	// Attempt 2: leased and completed with a real solve.
	l2, ok := q.Lease()
	if !ok {
		t.Fatal("second lease: no job")
	}
	out, err := ExecuteSpec(context.Background(), l2.Payload.(*JobSpec), 0)
	if err != nil {
		t.Fatalf("ExecuteSpec: %v", err)
	}
	if err := q.Complete(l2.ID, out); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if _, err := awaitTicket(t, tk, 10*time.Second); err != nil {
		t.Fatalf("outcome: %v", err)
	}

	var buf bytes.Buffer
	if err := obs.Encode(&buf, obs.StripTiming(tr.Events())); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestDispatchTraceGolden pins the dispatch span tree bytes — including
// a lease-lapse requeue and the adopted worker trace — and their
// independence from the solver worker count.
func TestDispatchTraceGolden(t *testing.T) {
	base := dispatchTraceBytes(t, 1)
	for _, workers := range []int{2, 4} {
		got := dispatchTraceBytes(t, workers)
		if !bytes.Equal(got, base) {
			t.Fatalf("stripped dispatch trace differs between solver workers=1 and workers=%d", workers)
		}
	}
	checkGolden(t, "dispatch_trace", base)
}
