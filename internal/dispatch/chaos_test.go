// Chaos e2e suite: kill workers mid-solve, drop heartbeats, partition
// the coordinator — and assert the dispatch layer's two invariants hold
// under all of it:
//
//  1. every accepted job terminates, with a result or a structured error;
//  2. a requeued job's bytes are identical to an uninterrupted run's.
//
// Run with -race (make e2e-dispatch does).
package dispatch

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"wavemin/internal/faultinject"
	"wavemin/internal/jobq"
)

// TestDispatchCleanFleet is the no-chaos baseline: three workers drain a
// batch and every result matches the in-process reference bytes.
func TestDispatchCleanFleet(t *testing.T) {
	spec := testSpec(t, 12, 0, false)
	ref := referenceBytes(t, spec)

	tc := newTestCoord(t, 1, Options{LeaseTTL: 2 * time.Second, MaxAttempts: 3})
	f := newFleet(t, tc, WorkerOptions{})
	for i := 0; i < 3; i++ {
		f.spawn()
	}

	const jobs = 9
	var tickets []*jobq.Ticket
	for i := 0; i < jobs; i++ {
		tickets = append(tickets, tc.submit(spec, time.Minute))
	}
	for i, tk := range tickets {
		res, err := awaitTicket(t, tk, 30*time.Second)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		out := res.(*Outcome)
		if !bytes.Equal(out.ResultJSON, ref) {
			t.Fatalf("job %d: result bytes differ from the in-process reference", i)
		}
		if tk.Attempts() != 1 {
			t.Errorf("job %d: attempts = %d, want 1 in a clean run", i, tk.Attempts())
		}
	}
	if m := tc.c.MetricsSnapshot(); m.Completions != jobs {
		t.Errorf("completions = %d, want %d", m.Completions, jobs)
	}
}

// TestDispatchChaosRandomKillSchedule is the acceptance scenario: three
// workers, a seeded random kill schedule firing mid-solve, replacements
// spawned after each kill. Every accepted job must terminate, and every
// completed job's bytes must equal the uninterrupted single-process run.
func TestDispatchChaosRandomKillSchedule(t *testing.T) {
	spec := testSpec(t, 12, 0, false)
	ref := referenceBytes(t, spec)

	// Short leases and a fast sweeper so a killed worker's job requeues
	// quickly; a generous retry budget so the batch survives every kill.
	tc := newTestCoord(t, 1, Options{
		LeaseTTL:      250 * time.Millisecond,
		SweepInterval: 50 * time.Millisecond,
		MaxAttempts:   10,
	})

	// Stretch each solve so kills land mid-solve, not between jobs.
	t.Cleanup(faultinject.Reset)
	faultinject.Set(faultinject.SiteWorkerExecute, func() {
		time.Sleep(30 * time.Millisecond)
	})

	f := newFleet(t, tc, WorkerOptions{PollWait: 100 * time.Millisecond})
	for i := 0; i < 3; i++ {
		f.spawn()
	}

	const jobs = 9
	var tickets []*jobq.Ticket
	for i := 0; i < jobs; i++ {
		tickets = append(tickets, tc.submit(spec, time.Minute))
	}

	// The kill schedule: seeded (reproducible), randomized (the point),
	// each kill followed by a replacement so the fleet stays at strength.
	rng := rand.New(rand.NewSource(5))
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for k := 0; k < 6; k++ {
			time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
			f.killOne(rng.Intn(3))
			f.spawn()
		}
	}()

	retried := 0
	for i, tk := range tickets {
		res, err := awaitTicket(t, tk, 60*time.Second)
		if err != nil {
			// Termination with a structured error is a legal outcome under
			// chaos — but with a 10-attempt budget it means something is
			// systematically wrong, so fail loudly.
			t.Fatalf("job %d terminated with error after %d attempts: %v", i, tk.Attempts(), err)
		}
		out := res.(*Outcome)
		if !bytes.Equal(out.ResultJSON, ref) {
			t.Fatalf("job %d (attempts=%d): bytes differ from the uninterrupted run", i, tk.Attempts())
		}
		if tk.Attempts() > 1 {
			retried++
		}
	}
	<-killerDone
	t.Logf("chaos run: %d/%d jobs were requeued at least once; coordinator metrics %+v",
		retried, jobs, tc.c.MetricsSnapshot())
}

// TestDispatchHeartbeatLapseRequeues drops a worker's heartbeats (the
// worker stays alive and keeps solving) until its lease lapses: the job
// must requeue to a healthy worker, finish with reference bytes, and the
// stale worker's late completion must be rejected — never double-applied.
func TestDispatchHeartbeatLapseRequeues(t *testing.T) {
	spec := testSpec(t, 12, 0, false)
	ref := referenceBytes(t, spec)

	tc := newTestCoord(t, 1, Options{
		LeaseTTL:      150 * time.Millisecond,
		SweepInterval: 30 * time.Millisecond,
		MaxAttempts:   3,
	})

	// Worker 1 (manual): leases the job, never heartbeats, and solves
	// slowly — exactly what a worker with a blackholed heartbeat path
	// looks like to the coordinator.
	tk := tc.submit(spec, time.Minute)
	l1, ok := tc.q.Lease()
	if !ok {
		t.Fatal("manual lease: no job")
	}

	// Let the lease lapse, then bring up a healthy worker to finish it.
	time.Sleep(300 * time.Millisecond)
	f := newFleet(t, tc, WorkerOptions{PollWait: 100 * time.Millisecond})
	f.spawn()

	res, err := awaitTicket(t, tk, 30*time.Second)
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	out := res.(*Outcome)
	if !bytes.Equal(out.ResultJSON, ref) {
		t.Fatal("requeued job bytes differ from the uninterrupted run")
	}
	if got := tk.Attempts(); got != 2 {
		t.Errorf("attempts = %d, want 2 (lapse + retry)", got)
	}

	// The stale worker finally finishes and reports: HTTP 409, and the
	// ticket's already-resolved outcome must not change.
	staleOut, err := ExecuteSpec(context.Background(), spec, 0)
	if err != nil {
		t.Fatalf("stale solve: %v", err)
	}
	w, err := NewWorker(WorkerOptions{Coordinator: tc.ts.URL, ID: "stale"})
	if err != nil {
		t.Fatal(err)
	}
	status, body, err := w.post(context.Background(), "/v1/dispatch/complete", completeRequest{
		WorkerID: "stale", LeaseID: l1.ID, Outcome: staleOut,
	})
	if err != nil {
		t.Fatalf("stale complete: %v", err)
	}
	if status != http.StatusConflict {
		t.Fatalf("stale complete: status %d (%s), want 409", status, body)
	}
	if m := tc.c.MetricsSnapshot(); m.StaleRejected == 0 {
		t.Error("StaleRejected = 0, want the late completion counted")
	}
}

// TestDispatchCoordinatorPartition cuts a worker off from the
// coordinator mid-solve: heartbeats and the eventual completion all fail
// at the transport. The lease lapses, a healthy worker reruns the job,
// and the partitioned worker's result never lands anywhere.
func TestDispatchCoordinatorPartition(t *testing.T) {
	spec := testSpec(t, 12, 0, false)
	ref := referenceBytes(t, spec)

	tc := newTestCoord(t, 1, Options{
		LeaseTTL:      150 * time.Millisecond,
		SweepInterval: 30 * time.Millisecond,
		MaxAttempts:   3,
	})

	// The partition: once tripped, every request from this worker fails.
	part := &partitionTransport{next: http.DefaultTransport}
	// Stretch the solve past the lease TTL so the partition (tripped
	// mid-solve below) is what kills the lease.
	gate := make(chan struct{})
	var gateOnce sync.Once
	t.Cleanup(faultinject.Reset)
	faultinject.Set(faultinject.SiteWorkerExecute, func() {
		gateOnce.Do(func() { close(gate) }) // signal: solve started
		time.Sleep(400 * time.Millisecond)
	})

	f := newFleet(t, tc, WorkerOptions{
		PollWait: 100 * time.Millisecond,
		Client:   &http.Client{Transport: part},
	})
	victim := f.spawn()

	tk := tc.submit(spec, time.Minute)
	<-gate // the victim is mid-solve
	part.trip()

	// A healthy worker (default transport) picks the requeued job up.
	// Disarm the solve-stretching hook so only the victim was slowed.
	faultinject.Clear(faultinject.SiteWorkerExecute)
	healthy := newFleet(t, tc, WorkerOptions{ID: "h", PollWait: 100 * time.Millisecond})
	healthy.spawn()

	res, err := awaitTicket(t, tk, 30*time.Second)
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	out := res.(*Outcome)
	if !bytes.Equal(out.ResultJSON, ref) {
		t.Fatal("post-partition rerun bytes differ from the uninterrupted run")
	}
	if got := tk.Attempts(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
	victim.w.Kill() // stop the victim's doomed retry loop
}

// TestDispatchCrashLoopExhaustsRetries makes every execution attempt
// crash (injected panic → silent abandon, like a real worker death) and
// asserts the job terminates with the structured retry-exhausted error
// rather than looping forever.
func TestDispatchCrashLoopExhaustsRetries(t *testing.T) {
	spec := testSpec(t, 8, 0, false)

	tc := newTestCoord(t, 1, Options{
		LeaseTTL:      100 * time.Millisecond,
		SweepInterval: 20 * time.Millisecond,
		MaxAttempts:   2,
	})
	t.Cleanup(faultinject.Reset)
	faultinject.Set(faultinject.SiteWorkerExecute, func() {
		panic("chaos: injected worker crash")
	})

	f := newFleet(t, tc, WorkerOptions{PollWait: 50 * time.Millisecond})
	f.spawn()

	tk := tc.submit(spec, time.Minute)
	_, err := awaitTicket(t, tk, 30*time.Second)
	var rex *jobq.RetryExhaustedError
	if !errors.As(err, &rex) {
		t.Fatalf("outcome err = %v, want *jobq.RetryExhaustedError", err)
	}
	if rex.Attempts != 2 {
		t.Errorf("exhausted after %d attempts, want 2", rex.Attempts)
	}
}

// TestDispatchKillMidSolveThenRecover kills the only worker while it is
// inside the solver, then spawns a replacement: the job must requeue and
// complete with reference bytes.
func TestDispatchKillMidSolveThenRecover(t *testing.T) {
	spec := testSpec(t, 12, 0, false)
	ref := referenceBytes(t, spec)

	tc := newTestCoord(t, 1, Options{
		LeaseTTL:      150 * time.Millisecond,
		SweepInterval: 30 * time.Millisecond,
		MaxAttempts:   3,
	})

	// The execute hook parks the first solve until the test has killed
	// the worker — a guaranteed mid-solve kill, no timing games.
	inSolve := make(chan struct{})
	release := make(chan struct{})
	var first sync.Once
	t.Cleanup(faultinject.Reset)
	faultinject.Set(faultinject.SiteWorkerExecute, func() {
		var parked bool
		first.Do(func() {
			parked = true
			close(inSolve)
			<-release
		})
		_ = parked
	})

	f := newFleet(t, tc, WorkerOptions{PollWait: 50 * time.Millisecond})
	victim := f.spawn()

	tk := tc.submit(spec, time.Minute)
	<-inSolve
	victim.w.Kill()
	close(release)
	<-victim.done

	f.spawn() // the replacement
	res, err := awaitTicket(t, tk, 30*time.Second)
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	out := res.(*Outcome)
	if !bytes.Equal(out.ResultJSON, ref) {
		t.Fatal("post-kill rerun bytes differ from the uninterrupted run")
	}
	if got := tk.Attempts(); got != 2 {
		t.Errorf("attempts = %d, want 2 (kill + retry)", got)
	}
}

// TestDispatchLocalExecZeroWorkers pins the hybrid default: a
// coordinator with LocalExec and no remote workers still drains
// dispatched jobs through its own pool, byte-identically.
func TestDispatchLocalExecZeroWorkers(t *testing.T) {
	spec := testSpec(t, 12, 0, false)
	ref := referenceBytes(t, spec)

	tc := newTestCoord(t, 2, Options{LocalExec: true})
	tk := tc.submit(spec, time.Minute)
	res, err := awaitTicket(t, tk, 30*time.Second)
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	out := res.(*Outcome)
	if !bytes.Equal(out.ResultJSON, ref) {
		t.Fatal("local-exec bytes differ from the reference")
	}
	if m := tc.c.MetricsSnapshot(); m.Leases != 0 {
		t.Errorf("remote leases = %d, want 0", m.Leases)
	}
}

// TestDispatchDeadlineTicksWhileLeased pins the PR 4 deadline contract
// across the dispatch layer: a job whose deadline passes while leased to
// a stalled worker terminates as expired — a structured error, not a
// hang and not a retry loop.
func TestDispatchDeadlineTicksWhileLeased(t *testing.T) {
	spec := testSpec(t, 8, 0, false)

	tc := newTestCoord(t, 1, Options{
		LeaseTTL:      10 * time.Second, // lease never lapses; the JOB deadline is the clock
		SweepInterval: 30 * time.Millisecond,
		MaxAttempts:   3,
	})

	// The worker stalls inside the solver for longer than the deadline.
	t.Cleanup(faultinject.Reset)
	faultinject.Set(faultinject.SiteWorkerExecute, func() {
		time.Sleep(600 * time.Millisecond)
	})
	f := newFleet(t, tc, WorkerOptions{PollWait: 50 * time.Millisecond})
	f.spawn()

	tk := tc.submit(spec, 200*time.Millisecond)
	_, err := awaitTicket(t, tk, 30*time.Second)
	if err == nil {
		t.Fatal("job with a 200ms deadline and a 600ms stall completed")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		// The worker reports "expired"; either the context error or the
		// structured remote error is an acceptable terminal shape.
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != "expired" {
			t.Fatalf("outcome err = %v, want deadline-shaped", err)
		}
	}
}

// partitionTransport fails every request once tripped — a network
// partition between one worker and the coordinator.
type partitionTransport struct {
	next    http.RoundTripper
	tripped sync.Once
	down    chan struct{}
	mu      sync.Mutex
	init    bool
}

func (p *partitionTransport) ensure() {
	p.mu.Lock()
	if !p.init {
		p.down = make(chan struct{})
		p.init = true
	}
	p.mu.Unlock()
}

func (p *partitionTransport) trip() {
	p.ensure()
	p.tripped.Do(func() { close(p.down) })
}

func (p *partitionTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	p.ensure()
	select {
	case <-p.down:
		return nil, errors.New("partition: coordinator unreachable")
	default:
		return p.next.RoundTrip(r)
	}
}
