package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"wavemin/internal/faultinject"
)

// ErrKilled reports that the worker was killed (Kill): it abandoned any
// leased job silently — no complete, no fail, no further heartbeats — so
// the coordinator sees exactly what a crashed process looks like.
var ErrKilled = errors.New("dispatch: worker killed")

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// ID identifies this worker in protocol messages (required).
	ID string
	// SolverWorkers caps solver parallelism on this machine (0 = uncapped;
	// results are identical for every cap).
	SolverWorkers int
	// Client issues the protocol requests; nil uses a default client.
	// Tests substitute transports here to simulate partitions.
	Client *http.Client
	// PollWait is the long-poll duration per lease request (default 2s).
	PollWait time.Duration
	// RetryBaseWait seeds the lease-poll backoff after a transport
	// failure (default 100ms). Each consecutive failure doubles the wait
	// up to RetryMaxWait, with full jitter, and any successful poll —
	// including an empty 204 — resets it, so a restarting coordinator is
	// not met by its whole fleet retrying in lockstep.
	RetryBaseWait time.Duration
	// RetryMaxWait caps the backoff (default 5s).
	RetryMaxWait time.Duration
}

// Worker pulls jobs from a coordinator and solves them: the client side
// of the dispatch protocol. Run loops lease → solve (heartbeating) →
// complete/fail until the context ends, the coordinator drains, or Kill.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	killed atomic.Bool
	cancel atomic.Value // context.CancelFunc installed by Run
}

// NewWorker validates opts and builds a worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" {
		return nil, errors.New("dispatch: worker needs a coordinator URL")
	}
	if opts.ID == "" {
		return nil, errors.New("dispatch: worker needs an ID")
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 2 * time.Second
	}
	if opts.RetryBaseWait <= 0 {
		opts.RetryBaseWait = 100 * time.Millisecond
	}
	if opts.RetryMaxWait <= 0 {
		opts.RetryMaxWait = 5 * time.Second
	}
	if opts.RetryMaxWait < opts.RetryBaseWait {
		opts.RetryMaxWait = opts.RetryBaseWait
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Worker{opts: opts, client: client}, nil
}

// Kill emulates a worker crash: every in-flight solve, heartbeat, and
// poll is abandoned immediately and silently, and Run returns ErrKilled.
// The coordinator hears nothing further — recovery is entirely the lease
// sweeper's job. (The chaos suite's favorite button.)
func (w *Worker) Kill() {
	w.killed.Store(true)
	if c, ok := w.cancel.Load().(context.CancelFunc); ok {
		c()
	}
}

// Run is the worker loop. It returns nil when the coordinator reports it
// is draining (no further work will ever arrive), ErrKilled after Kill,
// or ctx.Err() when the context ends.
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.cancel.Store(cancel)
	retryWait := w.opts.RetryBaseWait
	for {
		if w.killed.Load() {
			return ErrKilled
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.lease(ctx)
		if err != nil {
			if errors.Is(err, errDraining) {
				return nil
			}
			if w.killed.Load() {
				return ErrKilled
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Transient poll failure (coordinator restarting, network
			// blip): exponential backoff with full jitter, so a fleet of
			// workers spreads its retries instead of stampeding the
			// coordinator the instant it comes back.
			jittered := retryWait/2 + time.Duration(rand.Int63n(int64(retryWait/2)+1))
			select {
			case <-time.After(jittered):
			case <-ctx.Done():
				return ctx.Err()
			}
			retryWait *= 2
			if retryWait > w.opts.RetryMaxWait {
				retryWait = w.opts.RetryMaxWait
			}
			continue
		}
		retryWait = w.opts.RetryBaseWait // the coordinator answered
		if lease == nil {
			continue // long poll elapsed with no work
		}
		w.serve(ctx, lease)
	}
}

// errDraining is the sentinel for a coordinator 503: intake is closed
// and the backlog is empty, so the worker can exit cleanly.
var errDraining = errors.New("dispatch: coordinator draining")

// lease long-polls the coordinator for the next job. A nil lease with a
// nil error means the poll elapsed without work.
func (w *Worker) lease(ctx context.Context) (*leaseResponse, error) {
	status, body, err := w.post(ctx, "/v1/dispatch/lease", leaseRequest{
		WorkerID: w.opts.ID,
		WaitMs:   w.opts.PollWait.Milliseconds(),
	})
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		var lr leaseResponse
		if err := json.Unmarshal(body, &lr); err != nil {
			return nil, fmt.Errorf("dispatch: lease response: %w", err)
		}
		if lr.Spec == nil || lr.LeaseID == "" {
			return nil, errors.New("dispatch: lease response missing spec or lease ID")
		}
		return &lr, nil
	case http.StatusServiceUnavailable:
		return nil, errDraining
	default:
		return nil, fmt.Errorf("dispatch: lease: unexpected status %d: %s", status, body)
	}
}

// serve runs one leased job: heartbeats in the background, solves in the
// foreground, and reports the outcome — unless the worker is killed or
// loses the lease first, in which case it abandons silently.
func (w *Worker) serve(ctx context.Context, lease *leaseResponse) {
	// jobCtx bounds the solve: worker shutdown, Kill, a lost lease, or
	// the job's own deadline all cancel it.
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat at a third of the TTL: two beats can be lost before the
	// lease lapses.
	ttl := time.Duration(lease.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-jobCtx.Done():
				return
			case <-tick.C:
			}
			faultinject.At(faultinject.SiteWorkerHeartbeat)
			if w.killed.Load() {
				cancel()
				return
			}
			status, _, err := w.post(jobCtx, "/v1/dispatch/heartbeat", heartbeatRequest{
				WorkerID: w.opts.ID, LeaseID: lease.LeaseID,
			})
			if err != nil {
				continue // transient; the next beat may get through
			}
			if status != http.StatusOK {
				// Stale lease or expired job: the job is no longer ours.
				cancel()
				return
			}
		}
	}()

	outcome, rerr := w.runSpec(jobCtx, lease.Spec)
	cancel()
	<-hbDone

	if w.killed.Load() {
		return // crash semantics: abandon silently
	}
	if rerr != nil && rerr.Code == "crashed" {
		// A panicking solve is a worker defect, not a job verdict: abandon
		// silently and let the lease lapse, exactly like a real crash.
		return
	}

	// Report with a fresh context: jobCtx is already cancelled, and the
	// result of a finished solve should survive a worker shutdown race.
	repCtx, repCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer repCancel()
	if rerr != nil {
		// An "expired" verdict caused by this worker going away — not by
		// the job's own deadline — is the worker's fault: report it
		// retryable so the job requeues to a healthier holder.
		retryable := rerr.Code == "expired" && ctx.Err() != nil &&
			(lease.Deadline.IsZero() || time.Now().Before(lease.Deadline))
		_, _, _ = w.post(repCtx, "/v1/dispatch/fail", failRequest{
			WorkerID: w.opts.ID, LeaseID: lease.LeaseID, Error: rerr,
			Retryable: retryable,
		})
		return
	}
	// Echo the cache key so the coordinator can persist the result before
	// acknowledging the completion; a cache opt-out job omits it.
	key := lease.Spec.Key
	if lease.Spec.NoCache {
		key = ""
	}
	for attempt := 0; attempt < 3; attempt++ {
		status, _, err := w.post(repCtx, "/v1/dispatch/complete", completeRequest{
			WorkerID: w.opts.ID, LeaseID: lease.LeaseID, Outcome: outcome, Key: key,
		})
		if err == nil {
			_ = status // 200 applied; 409 stale (someone else owns the job now)
			return
		}
		select {
		case <-repCtx.Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// runSpec executes the leased spec with crash containment: a panic in
// the solver (or an injected one) surfaces as a "crashed" RemoteError so
// serve can abandon the lease the way a dead process would.
func (w *Worker) runSpec(ctx context.Context, spec *JobSpec) (outcome *Outcome, rerr *RemoteError) {
	defer func() {
		if p := recover(); p != nil {
			outcome, rerr = nil, &RemoteError{Code: "crashed", Message: fmt.Sprintf("worker panic: %v", p)}
		}
	}()
	faultinject.At(faultinject.SiteWorkerExecute)
	if w.killed.Load() {
		return nil, &RemoteError{Code: "crashed", Message: "worker killed"}
	}
	out, err := ExecuteSpec(ctx, spec, w.opts.SolverWorkers)
	if err != nil {
		var re *RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, &RemoteError{Code: "solver_failed", Message: err.Error()}
	}
	return out, nil
}

// post issues one protocol request and returns (status, body).
func (w *Worker) post(ctx context.Context, path string, payload any) (int, []byte, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, nil, fmt.Errorf("dispatch: marshal %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, rb, nil
}
