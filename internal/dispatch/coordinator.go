package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wavemin/internal/jobq"
	"wavemin/internal/obs"
)

// Options configures a Coordinator. Zero values take the defaults noted.
type Options struct {
	// LeaseTTL is how long a granted lease stays valid without a
	// heartbeat (default 15s). Workers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// MaxAttempts bounds lease grants per job before the job fails with a
	// *jobq.RetryExhaustedError (default 3).
	MaxAttempts int
	// SweepInterval is how often lapsed leases are requeued and dead-
	// context jobs culled (default LeaseTTL/4).
	SweepInterval time.Duration
	// LocalExec lets the queue's own worker pool execute dispatched jobs
	// too, so a coordinator with zero remote workers still makes progress
	// — the hybrid default for `wavemind -role=coordinator`.
	LocalExec bool
	// SolverWorkers caps solver parallelism for locally-executed jobs
	// (0 = uncapped). Results are identical for every cap.
	SolverWorkers int
	// MaxLeaseWait bounds the long-poll duration of the lease endpoint
	// (default 30s); client waitMs beyond it is clamped.
	MaxLeaseWait time.Duration
	// MaxWireBytes bounds a protocol request body (default 64 MiB).
	// Outcome bodies carry a full result plus trace events, so the
	// default is generous; operators fronting untrusted workers can
	// tighten it.
	MaxWireBytes int64
	// PersistResult, when set, makes completion durable-before-ack: it is
	// called with the job's cache key and canonical result bytes BEFORE
	// the completion is applied to the queue, and an error refuses the
	// completion (the worker's report is rejected, the lease eventually
	// lapses, and the job re-runs). Degraded results are not persisted.
	PersistResult func(key string, resultJSON []byte) error
	// ShardLabel, when set, names the shard this coordinator serves in a
	// sharded fleet (e.g. "s2"). It rides on lease grants so workers —
	// which may join any coordinator — can log which shard's work they
	// run. Leases themselves stay shard-local: a coordinator only ever
	// leases out jobs it owns.
	ShardLabel string
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL == 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 3
	}
	if o.SweepInterval == 0 {
		o.SweepInterval = o.LeaseTTL / 4
	}
	if o.MaxLeaseWait == 0 {
		o.MaxLeaseWait = 30 * time.Second
	}
	if o.MaxWireBytes == 0 {
		o.MaxWireBytes = 64 << 20
	}
	return o
}

// Metrics is a snapshot of the coordinator's protocol counters.
type Metrics struct {
	Leases        int64 // lease grants handed to remote workers
	Heartbeats    int64 // accepted heartbeats
	Completions   int64 // accepted completions
	Failures      int64 // accepted failure reports
	Requeues      int64 // jobs requeued after a lapsed lease / retryable fail
	StaleRejected int64 // mutations rejected for a stale/unknown lease
}

// Coordinator owns the server side of the dispatch protocol: it turns a
// jobq.Queue's leasable jobs into HTTP lease/heartbeat/complete/fail
// endpoints and sweeps lapsed leases back into the queue.
type Coordinator struct {
	q    *jobq.Queue
	opts Options

	// shardLabel is the live value of Options.ShardLabel: a sharded
	// fleet's routing map is a versioned, gossiped object, and the label
	// follows the adopted map (SetShardLabel), so lease grants always name
	// the map epoch the work was granted under. Read on every lease.
	shardLabel atomic.Value // string

	met struct {
		leases, heartbeats, completions, failures, requeues, staleRejected atomic.Int64
	}

	stopOnce sync.Once
	stop     chan struct{}
	sweeper  sync.WaitGroup
}

// NewCoordinator wires a coordinator onto q: it installs the lease
// policy (TTL, retry budget), optionally the local executor, and starts
// the lease sweeper. Call Close to stop the sweeper.
func NewCoordinator(q *jobq.Queue, opts Options) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{q: q, opts: opts, stop: make(chan struct{})}
	c.shardLabel.Store(opts.ShardLabel)
	q.SetLeasePolicy(opts.LeaseTTL, opts.MaxAttempts)
	if opts.LocalExec {
		q.SetLeaseExecutor(func(ctx context.Context, payload any) (any, error) {
			spec, ok := payload.(*JobSpec)
			if !ok {
				return nil, fmt.Errorf("dispatch: unexpected payload %T", payload)
			}
			out, err := ExecuteSpec(ctx, spec, opts.SolverWorkers)
			if err != nil {
				return nil, err
			}
			// Durable-before-ack: the result bytes reach stable storage
			// before the queue learns the job completed, so a journal that
			// says "complete" always has the bytes to back it up.
			if opts.PersistResult != nil && !out.Degraded && !spec.NoCache {
				if perr := opts.PersistResult(spec.Key, out.ResultJSON); perr != nil {
					return nil, fmt.Errorf("dispatch: persist result: %w", perr)
				}
			}
			return out, nil
		})
	}
	c.sweeper.Add(1)
	go c.sweep()
	return c
}

// sweep periodically requeues lapsed leases and culls dead-context jobs.
func (c *Coordinator) sweep() {
	defer c.sweeper.Done()
	tick := time.NewTicker(c.opts.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			if n := c.q.ExpireLeases(); n > 0 {
				c.met.requeues.Add(int64(n))
			}
		}
	}
}

// Close stops the lease sweeper. It does not drain the queue — that is
// the owner's job (Server.Drain / Queue.Drain).
// ShardLabel returns the label lease grants currently carry.
func (c *Coordinator) ShardLabel() string {
	s, _ := c.shardLabel.Load().(string)
	return s
}

// SetShardLabel updates the shard label on live lease grants — called by
// the routing layer when the node adopts a newer shard map, so grants
// issued after the flip name the new epoch. Safe for concurrent use with
// in-flight leases.
func (c *Coordinator) SetShardLabel(label string) {
	c.shardLabel.Store(label)
}

func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.sweeper.Wait()
}

// Submit enqueues one job for dispatch. The spec travels to whichever
// worker leases the job (or to the local executor); tr, when non-nil,
// accumulates the deterministic dispatch span tree (see TraceObserver);
// observe, when non-nil, additionally sees every lease event (under the
// queue lock — it must not call back into the queue). The returned
// ticket resolves when the job is terminal; its Outcome is a (*Outcome,
// nil) pair on success.
func (c *Coordinator) Submit(ctx context.Context, pri jobq.Priority, spec *JobSpec, tr *obs.Trace, observe func(jobq.LeaseEvent)) (*jobq.Ticket, error) {
	if spec == nil {
		return nil, errors.New("dispatch: nil spec")
	}
	return c.q.SubmitLeasable(ctx, pri, spec, composeObservers(TraceObserver(tr), observe))
}

// SubmitSub enqueues a sub-lease: one sub-unit (a yield sample chunk) of
// an already-accepted parent job. Sub-leases ride the same lease
// protocol — workers cannot tell them apart — but are never journaled
// (the parent re-derives them on recovery) and never persisted to the
// result store (spec.Key is empty and NoCache is set by the caller).
// During drain this returns jobq.ErrDraining and the caller must run the
// chunk inline; the chunk determinism contract makes the fallback
// byte-identical.
func (c *Coordinator) SubmitSub(ctx context.Context, pri jobq.Priority, spec *JobSpec, observe func(jobq.LeaseEvent)) (*jobq.Ticket, error) {
	if spec == nil || spec.Yield == nil {
		return nil, errors.New("dispatch: sub-lease requires a yield chunk spec")
	}
	return c.q.SubmitSubLease(ctx, pri, spec, observe)
}

// MetricsSnapshot returns the coordinator's protocol counters.
func (c *Coordinator) MetricsSnapshot() Metrics {
	return Metrics{
		Leases:        c.met.leases.Load(),
		Heartbeats:    c.met.heartbeats.Load(),
		Completions:   c.met.completions.Load(),
		Failures:      c.met.failures.Load(),
		Requeues:      c.met.requeues.Load(),
		StaleRejected: c.met.staleRejected.Load(),
	}
}

// --- wire messages --------------------------------------------------------

// leaseRequest is the body of POST /v1/dispatch/lease.
type leaseRequest struct {
	WorkerID string `json:"workerId"`
	// WaitMs long-polls: the coordinator holds the request up to this
	// long waiting for work before answering 204. 0 means no wait.
	WaitMs int64 `json:"waitMs"`
}

// leaseResponse is the 200 body of POST /v1/dispatch/lease.
type leaseResponse struct {
	LeaseID  string    `json:"leaseId"`
	Attempt  int       `json:"attempt"`
	TTLMs    int64     `json:"ttlMs"`
	Deadline time.Time `json:"deadline"` // job deadline (zero = none)
	Spec     *JobSpec  `json:"spec"`
	// Shard names the granting coordinator's shard in a sharded fleet
	// (Options.ShardLabel); empty on unsharded coordinators. Informational
	// for the worker — the lease protocol is identical either way.
	Shard string `json:"shard,omitempty"`
}

// heartbeatRequest is the body of POST /v1/dispatch/heartbeat.
type heartbeatRequest struct {
	WorkerID string `json:"workerId"`
	LeaseID  string `json:"leaseId"`
}

// completeRequest is the body of POST /v1/dispatch/complete.
type completeRequest struct {
	WorkerID string   `json:"workerId"`
	LeaseID  string   `json:"leaseId"`
	Outcome  *Outcome `json:"outcome"`
	// Key echoes the spec's cache key so a durable coordinator can
	// persist the result before applying the completion.
	Key string `json:"key,omitempty"`
}

// failRequest is the body of POST /v1/dispatch/fail.
type failRequest struct {
	WorkerID string       `json:"workerId"`
	LeaseID  string       `json:"leaseId"`
	Error    *RemoteError `json:"error"`
	// Retryable marks the failure as the worker's, not the job's: the
	// job is requeued against its retry budget instead of failing.
	Retryable bool `json:"retryable"`
}

// Register mounts the dispatch protocol on mux. Paths are fixed:
//
//	POST /v1/dispatch/lease      lease the next job (long-poll; 204 = no work)
//	POST /v1/dispatch/heartbeat  keep a lease alive
//	POST /v1/dispatch/complete   deliver a result
//	POST /v1/dispatch/fail       report a failure
//
// Every protocol violation — malformed body, stale lease, double
// completion — is a structured 4xx; the handlers never panic and a stale
// lease can never double-apply a result.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/dispatch/lease", c.handleLease)
	mux.HandleFunc("POST /v1/dispatch/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/dispatch/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/dispatch/fail", c.handleFail)
}

// maxWireBytes is the default protocol body bound; Options.MaxWireBytes
// overrides it per coordinator. Workers also use it to cap how much of a
// coordinator response they will read.
const maxWireBytes = 64 << 20

// decodeWire reads and decodes one protocol body into dst, returning a
// structured 4xx error for every malformed input.
func decodeWire(w http.ResponseWriter, r *http.Request, dst any, limit int64) *wireError {
	if limit <= 0 {
		limit = maxWireBytes
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &wireError{status: http.StatusRequestEntityTooLarge, code: "too_large",
				message: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return &wireError{status: http.StatusBadRequest, code: "bad_request",
			message: fmt.Sprintf("reading request body: %v", err)}
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return &wireError{status: http.StatusBadRequest, code: "bad_request",
			message: fmt.Sprintf("request body: %v", err)}
	}
	return nil
}

// wireError is a structured protocol failure:
// {"error":{"code":...,"message":...}} with the HTTP status attached.
type wireError struct {
	status  int
	code    string
	message string
}

func writeWireError(w http.ResponseWriter, e *wireError) {
	writeWireJSON(w, e.status, map[string]any{
		"error": map[string]any{"code": e.code, "message": e.message},
	})
}

func writeWireJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func staleLease(w http.ResponseWriter, c *Coordinator) {
	c.met.staleRejected.Add(1)
	writeWireError(w, &wireError{status: http.StatusConflict, code: "unknown_lease",
		message: "lease is unknown, expired, or already resolved; the job is no longer yours"})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if werr := decodeWire(w, r, &req, c.opts.MaxWireBytes); werr != nil {
		writeWireError(w, werr)
		return
	}
	if req.WorkerID == "" {
		writeWireError(w, &wireError{status: http.StatusBadRequest, code: "bad_request",
			message: "missing required field \"workerId\""})
		return
	}
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait < 0 {
		writeWireError(w, &wireError{status: http.StatusBadRequest, code: "bad_request",
			message: fmt.Sprintf("negative waitMs %d", req.WaitMs)})
		return
	}
	if wait > c.opts.MaxLeaseWait {
		wait = c.opts.MaxLeaseWait
	}

	var lease *jobq.Lease
	var err error
	if wait == 0 {
		var ok bool
		lease, ok = c.q.Lease()
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
	} else {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		lease, err = c.q.LeaseWait(ctx)
		switch {
		case errors.Is(err, jobq.ErrDraining):
			writeWireError(w, &wireError{status: http.StatusServiceUnavailable, code: "draining",
				message: "coordinator is draining; no further work"})
			return
		case err != nil: // wait elapsed or caller went away
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}

	spec, ok := lease.Payload.(*JobSpec)
	if !ok {
		// Not reachable through Submit; fail the job rather than strand it.
		_ = c.q.Fail(lease.ID, fmt.Errorf("dispatch: unexpected payload %T", lease.Payload), false)
		writeWireError(w, &wireError{status: http.StatusInternalServerError, code: "bad_payload",
			message: "leased job carried a non-dispatch payload"})
		return
	}
	c.met.leases.Add(1)
	var deadline time.Time
	if d, ok := lease.Ctx.Deadline(); ok {
		deadline = d
	}
	writeWireJSON(w, http.StatusOK, leaseResponse{
		LeaseID:  lease.ID,
		Attempt:  lease.Attempt,
		TTLMs:    lease.TTL.Milliseconds(),
		Deadline: deadline,
		Spec:     spec,
		Shard:    c.ShardLabel(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if werr := decodeWire(w, r, &req, c.opts.MaxWireBytes); werr != nil {
		writeWireError(w, werr)
		return
	}
	if req.LeaseID == "" {
		writeWireError(w, &wireError{status: http.StatusBadRequest, code: "bad_request",
			message: "missing required field \"leaseId\""})
		return
	}
	ttl, err := c.q.Heartbeat(req.LeaseID)
	switch {
	case errors.Is(err, jobq.ErrUnknownLease):
		staleLease(w, c)
		return
	case err != nil:
		// The job's own deadline passed: the lease is gone and the worker
		// should abandon the solve.
		writeWireError(w, &wireError{status: http.StatusConflict, code: "job_expired",
			message: err.Error()})
		return
	}
	c.met.heartbeats.Add(1)
	writeWireJSON(w, http.StatusOK, map[string]any{"ttlMs": ttl.Milliseconds()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if werr := decodeWire(w, r, &req, c.opts.MaxWireBytes); werr != nil {
		writeWireError(w, werr)
		return
	}
	if req.LeaseID == "" || req.Outcome == nil || len(req.Outcome.ResultJSON) == 0 {
		writeWireError(w, &wireError{status: http.StatusBadRequest, code: "bad_request",
			message: "completion requires \"leaseId\" and a non-empty \"outcome.resultJson\""})
		return
	}
	// Durable-before-ack: the result bytes must be on stable storage
	// before the completion is applied, or a crash between the two could
	// journal a completed job whose result no longer exists. A persist
	// failure refuses the completion — the lease lapses and the job
	// re-runs — rather than acknowledging what cannot be kept.
	if c.opts.PersistResult != nil && req.Key != "" && !req.Outcome.Degraded {
		if err := c.opts.PersistResult(req.Key, req.Outcome.ResultJSON); err != nil {
			writeWireError(w, &wireError{status: http.StatusServiceUnavailable, code: "persist_failed",
				message: fmt.Sprintf("result could not be made durable: %v", err)})
			return
		}
	}
	if err := c.q.Complete(req.LeaseID, req.Outcome); err != nil {
		staleLease(w, c)
		return
	}
	c.met.completions.Add(1)
	writeWireJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if werr := decodeWire(w, r, &req, c.opts.MaxWireBytes); werr != nil {
		writeWireError(w, werr)
		return
	}
	if req.LeaseID == "" {
		writeWireError(w, &wireError{status: http.StatusBadRequest, code: "bad_request",
			message: "missing required field \"leaseId\""})
		return
	}
	var cause error
	if req.Error != nil {
		cause = req.Error
	} else {
		cause = &RemoteError{Code: "worker_failed", Message: "worker reported failure without detail"}
	}
	if err := c.q.Fail(req.LeaseID, cause, req.Retryable); err != nil {
		staleLease(w, c)
		return
	}
	c.met.failures.Add(1)
	if req.Retryable {
		c.met.requeues.Add(1)
	}
	writeWireJSON(w, http.StatusOK, map[string]any{"ok": true})
}
