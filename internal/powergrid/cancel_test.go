package powergrid

import (
	"context"
	"errors"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
	"wavemin/internal/waveform"
)

func TestSimulateCanceled(t *testing.T) {
	g, err := New(150, 150, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inj := []Injection{{X: 75, Y: 75, IDD: waveform.Triangle(20, 10, 15, 5000)}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Simulate(ctx, inj, 0, 200, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMeasureTreeNoiseCanceled(t *testing.T) {
	lib := cell.DefaultLibrary()
	tree, err := cts.Synthesize([]cts.Sink{{X: 20, Y: 20, Cap: 8}, {X: 120, Y: 30, Cap: 8}}, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tm := tree.ComputeTiming(clocktree.NominalMode)
	g, _ := New(150, 150, DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.MeasureTreeNoise(ctx, tree, tm); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
