package powergrid

import (
	"context"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
	"wavemin/internal/waveform"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(0, 100, DefaultOptions()); err == nil {
		t.Error("zero die should error")
	}
	bad := DefaultOptions()
	bad.Pitch = 0
	if _, err := New(100, 100, bad); err == nil {
		t.Error("zero pitch should error")
	}
	g, err := New(200, 200, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() < 25 {
		t.Fatalf("node count %d too small for 200x200 at pitch 50", g.NodeCount())
	}
}

func TestQuietGridIsQuiet(t *testing.T) {
	g, _ := New(150, 150, DefaultOptions())
	rep, err := g.Simulate(context.Background(), nil, 0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VDDNoise > 1e-6 || rep.GndNoise > 1e-6 {
		t.Fatalf("no injections but noise %g/%g", rep.VDDNoise, rep.GndNoise)
	}
}

func TestInjectionCausesBothRailNoise(t *testing.T) {
	g, _ := New(150, 150, DefaultOptions())
	inj := []Injection{{
		X: 75, Y: 75,
		IDD: waveform.Triangle(20, 10, 15, 5000),
		ISS: waveform.Triangle(20, 10, 15, 3000),
	}}
	rep, err := g.Simulate(context.Background(), inj, 0, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VDDNoise <= 0 || rep.GndNoise <= 0 {
		t.Fatalf("expected noise on both rails, got %g/%g", rep.VDDNoise, rep.GndNoise)
	}
	// IDD pulse bigger than ISS → VDD noise should exceed Gnd noise.
	if rep.VDDNoise <= rep.GndNoise {
		t.Fatalf("VDD noise %g should exceed Gnd noise %g", rep.VDDNoise, rep.GndNoise)
	}
	// mV-scale sanity: a 5 mA draw on a ~0.1 Ω/segment mesh.
	if rep.VDDNoise < 0.0002 || rep.VDDNoise > 0.2 {
		t.Fatalf("VDD noise %g V implausible", rep.VDDNoise)
	}
	if rep.WorstVDD.IsZero() {
		t.Fatal("worst-node waveform missing")
	}
}

func TestDenseGridIsQuieter(t *testing.T) {
	inj := []Injection{{X: 75, Y: 75, IDD: waveform.Triangle(20, 10, 15, 8000)}}
	sparse, _ := New(150, 150, DefaultOptions())
	dense, _ := New(150, 150, DenseOptions())
	rs, err := sparse.Simulate(context.Background(), inj, 0, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := dense.Simulate(context.Background(), inj, 0, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rd.VDDNoise >= rs.VDDNoise {
		t.Fatalf("dense grid (%g) should be quieter than sparse (%g)", rd.VDDNoise, rs.VDDNoise)
	}
}

func TestNoiseIsLocal(t *testing.T) {
	// Two identical pulses injected at the same node produce more noise
	// than the same two pulses injected far apart — power noise locality,
	// the reason WaveMin optimizes zone by zone.
	g, _ := New(400, 400, DefaultOptions())
	pulse := waveform.Triangle(20, 10, 15, 4000)
	same := []Injection{{X: 200, Y: 200, IDD: pulse}, {X: 200, Y: 200, IDD: pulse}}
	apart := []Injection{{X: 60, Y: 60, IDD: pulse}, {X: 340, Y: 340, IDD: pulse}}
	rSame, err := g.Simulate(context.Background(), same, 0, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	rApart, err := g.Simulate(context.Background(), apart, 0, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rSame.VDDNoise <= rApart.VDDNoise {
		t.Fatalf("colocated noise %g should exceed spread noise %g", rSame.VDDNoise, rApart.VDDNoise)
	}
}

func TestTimeSpreadingReducesNoise(t *testing.T) {
	// The WaveMin premise: the same charge drawn at staggered times causes
	// less rail droop than drawn simultaneously.
	g, _ := New(150, 150, DefaultOptions())
	p := waveform.Triangle(20, 10, 15, 4000)
	together := []Injection{{X: 75, Y: 75, IDD: p}, {X: 80, Y: 75, IDD: p}}
	staggered := []Injection{{X: 75, Y: 75, IDD: p}, {X: 80, Y: 75, IDD: p.Shift(60)}}
	rT, err := g.Simulate(context.Background(), together, 0, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	rS, err := g.Simulate(context.Background(), staggered, 0, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rS.VDDNoise >= rT.VDDNoise {
		t.Fatalf("staggered %g should be quieter than simultaneous %g", rS.VDDNoise, rT.VDDNoise)
	}
}

func TestMeasureTreeNoise(t *testing.T) {
	lib := cell.DefaultLibrary()
	sinks := []cts.Sink{
		{X: 20, Y: 20, Cap: 8}, {X: 120, Y: 30, Cap: 8},
		{X: 40, Y: 110, Cap: 8}, {X: 130, Y: 120, Cap: 8},
	}
	tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tm := tree.ComputeTiming(clocktree.NominalMode)
	g, _ := New(150, 150, DefaultOptions())
	vddN, gndN, err := g.MeasureTreeNoise(context.Background(), tree, tm)
	if err != nil {
		t.Fatal(err)
	}
	if vddN <= 0 || gndN <= 0 {
		t.Fatalf("tree noise %g/%g", vddN, gndN)
	}
}

func TestTreeInjectionsCount(t *testing.T) {
	lib := cell.DefaultLibrary()
	tree, err := cts.Synthesize([]cts.Sink{{X: 10, Y: 10, Cap: 8}, {X: 90, Y: 90, Cap: 8}}, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tm := tree.ComputeTiming(clocktree.NominalMode)
	inj := TreeInjections(tree, tm, cell.Rising)
	if len(inj) != tree.Len() {
		t.Fatalf("%d injections, want %d", len(inj), tree.Len())
	}
}

func TestStaticIRDrop(t *testing.T) {
	g, _ := New(150, 150, DefaultOptions())
	inj := []Injection{{
		X: 75, Y: 75,
		IDD: waveform.Triangle(20, 10, 15, 5000), // 62.5 nC·10⁻³ of charge
	}}
	rep, err := g.StaticIRDrop(context.Background(), inj, 500) // 500 ps clock period
	if err != nil {
		t.Fatal(err)
	}
	// Average current = charge/window = 62.5e3/500 = 125 µA; IR drop must
	// be positive but far below the transient peak's droop.
	if rep.VDDNoise <= 0 {
		t.Fatal("no IR drop")
	}
	tr, err := g.Simulate(context.Background(), inj, 0, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VDDNoise >= tr.VDDNoise {
		t.Fatalf("static IR drop %g should be below the transient droop %g", rep.VDDNoise, tr.VDDNoise)
	}
	if _, err := g.StaticIRDrop(context.Background(), inj, 0); err == nil {
		t.Fatal("zero window should error")
	}
}
