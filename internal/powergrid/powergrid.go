// Package powergrid models the on-chip power and ground distribution
// network as two regular RC meshes (after the grid model of Zhu, "Power
// Distribution Network Design for VLSI", the paper's reference [36]) and
// measures the voltage fluctuation caused by clock-tree switching currents
// — the paper's "VDD noise" and "Gnd noise" columns.
//
// Every clock buffering element injects its IDD pulse as a draw from the
// nearest VDD-mesh node and its ISS pulse as a push into the nearest
// ground-mesh node; pads (ideal supplies) sit on the mesh boundary; each
// mesh node carries decoupling capacitance. The transient solve is done by
// internal/spice.
package powergrid

import (
	"context"
	"fmt"
	"math"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/faultinject"
	"wavemin/internal/spice"
	"wavemin/internal/waveform"
)

// Options configures the mesh.
type Options struct {
	Pitch    float64 // mesh pitch, µm
	SegRes   float64 // resistance of one mesh segment, kΩ
	Decap    float64 // decoupling capacitance per mesh node, fF
	PadEvery int     // a pad every k boundary nodes (1 = every boundary node)
	VDD      float64 // nominal supply, V
}

// DefaultOptions is the ISCAS'89-style grid: corner-ish pads and a fairly
// resistive mesh, giving mV-scale noise for mA-scale clock currents.
func DefaultOptions() Options {
	return Options{Pitch: 50, SegRes: 1e-4 /* 0.1 Ω */, Decap: 120, PadEvery: 4, VDD: clocktree.NominalVDD}
}

// DenseOptions is the ISPD'09-style grid: pads on every boundary node and
// lower segment resistance; the same currents produce ~10× less noise,
// reproducing the contrast between the ISCAS and ISPD rows of Table V.
func DenseOptions() Options {
	return Options{Pitch: 50, SegRes: 2e-5 /* 0.02 Ω */, Decap: 300, PadEvery: 1, VDD: clocktree.NominalVDD}
}

// Injection is one switching element's current draw at a die location.
type Injection struct {
	X, Y float64           // µm
	IDD  waveform.Waveform // µA drawn from the VDD rail
	ISS  waveform.Waveform // µA pushed into the ground rail
}

// Grid is a built pair of rail meshes over a die.
type Grid struct {
	opt        Options
	cols, rows int
	dieW, dieH float64
}

// New builds a grid covering a dieW×dieH µm die.
func New(dieW, dieH float64, opt Options) (*Grid, error) {
	if dieW <= 0 || dieH <= 0 {
		return nil, fmt.Errorf("powergrid: bad die %gx%g", dieW, dieH)
	}
	if opt.Pitch <= 0 || opt.SegRes <= 0 || opt.PadEvery < 1 {
		return nil, fmt.Errorf("powergrid: bad options %+v", opt)
	}
	cols := int(math.Ceil(dieW/opt.Pitch)) + 1
	rows := int(math.Ceil(dieH/opt.Pitch)) + 1
	if cols < 2 {
		cols = 2
	}
	if rows < 2 {
		rows = 2
	}
	return &Grid{opt: opt, cols: cols, rows: rows, dieW: dieW, dieH: dieH}, nil
}

// NodeCount reports mesh nodes per rail.
func (g *Grid) NodeCount() int { return g.cols * g.rows }

// nearestNode maps a die location to mesh coordinates.
func (g *Grid) nearestNode(x, y float64) (int, int) {
	cx := int(x/g.opt.Pitch + 0.5)
	cy := int(y/g.opt.Pitch + 0.5)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

// Report is the outcome of a grid noise simulation.
type Report struct {
	VDDNoise float64 // max |V − VDD| over the VDD mesh, volts
	GndNoise float64 // max |V| over the ground mesh, volts
	// Worst-node waveforms for plotting/diagnosis.
	WorstVDD waveform.Waveform
	WorstGnd waveform.Waveform
}

// Simulate runs a transient of both meshes with the given injections over
// [t0, t1] at step dt (ps) and reports the worst rail deviations. The
// context bounds the underlying transient solve.
func (g *Grid) Simulate(ctx context.Context, inj []Injection, t0, t1, dt float64) (*Report, error) {
	faultinject.At(faultinject.SitePowergridSim)
	ckt := spice.NewCircuit()
	vddNode := make([][]int, g.rows)
	gndNode := make([][]int, g.rows)
	for r := 0; r < g.rows; r++ {
		vddNode[r] = make([]int, g.cols)
		gndNode[r] = make([]int, g.cols)
		for c := 0; c < g.cols; c++ {
			vddNode[r][c] = ckt.Node(fmt.Sprintf("vdd_%d_%d", r, c))
			gndNode[r][c] = ckt.Node(fmt.Sprintf("gnd_%d_%d", r, c))
		}
	}
	// Mesh segments.
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			if c+1 < g.cols {
				ckt.R(vddNode[r][c], vddNode[r][c+1], g.opt.SegRes)
				ckt.R(gndNode[r][c], gndNode[r][c+1], g.opt.SegRes)
			}
			if r+1 < g.rows {
				ckt.R(vddNode[r][c], vddNode[r+1][c], g.opt.SegRes)
				ckt.R(gndNode[r][c], gndNode[r+1][c], g.opt.SegRes)
			}
			if g.opt.Decap > 0 {
				ckt.C(vddNode[r][c], gndNode[r][c], g.opt.Decap)
			}
		}
	}
	// Pads along the boundary every PadEvery nodes. A pad is an ideal
	// supply behind a small bump resistance.
	const bumpRes = 1e-5 // 0.01 Ω
	pads := 0
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			onBoundary := r == 0 || c == 0 || r == g.rows-1 || c == g.cols-1
			if !onBoundary || (r+c)%g.opt.PadEvery != 0 {
				continue
			}
			vp := ckt.Node(fmt.Sprintf("vpad_%d_%d", r, c))
			ckt.V(vp, g.opt.VDD)
			ckt.R(vp, vddNode[r][c], bumpRes)
			gp := ckt.Node(fmt.Sprintf("gpad_%d_%d", r, c))
			ckt.V(gp, 0)
			ckt.R(gp, gndNode[r][c], bumpRes)
			pads++
		}
	}
	if pads == 0 {
		return nil, fmt.Errorf("powergrid: no pads placed (PadEvery too large?)")
	}
	// Injections.
	for _, in := range inj {
		cx, cy := g.nearestNode(in.X, in.Y)
		if !in.IDD.IsZero() {
			ckt.I(vddNode[cy][cx], spice.Ground, in.IDD)
		}
		if !in.ISS.IsZero() {
			ckt.I(spice.Ground, gndNode[cy][cx], in.ISS)
		}
	}
	res, err := ckt.Transient(ctx, t0, t1, dt)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	worstV, worstG := -1, -1
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			if d := res.MaxDeviation(vddNode[r][c], g.opt.VDD); d > rep.VDDNoise {
				rep.VDDNoise, worstV = d, vddNode[r][c]
			}
			if d := res.MaxDeviation(gndNode[r][c], 0); d > rep.GndNoise {
				rep.GndNoise, worstG = d, gndNode[r][c]
			}
		}
	}
	if worstV >= 0 {
		rep.WorstVDD = res.Voltage(worstV)
	}
	if worstG >= 0 {
		rep.WorstGnd = res.Voltage(worstG)
	}
	return rep, nil
}

// StaticIRDrop runs the classic DC power-grid check: every injection is
// replaced by its average current over the window (charge/window) and the
// resulting steady-state rail deviations are reported. Complements the
// transient analysis: IR drop is the sustained component of the noise,
// while Simulate captures the dynamic di/dt spikes the clock tree causes.
func (g *Grid) StaticIRDrop(ctx context.Context, inj []Injection, window float64) (*Report, error) {
	if window <= 0 {
		return nil, fmt.Errorf("powergrid: non-positive averaging window %g", window)
	}
	avg := make([]Injection, 0, len(inj))
	for _, in := range inj {
		flat := func(w waveform.Waveform) waveform.Waveform {
			i := w.Charge() / window
			if i == 0 {
				return waveform.Waveform{}
			}
			return waveform.MustNew([]waveform.Point{{T: 0, I: i}, {T: 10, I: i}})
		}
		avg = append(avg, Injection{X: in.X, Y: in.Y, IDD: flat(in.IDD), ISS: flat(in.ISS)})
	}
	// Two steps suffice: the sources are constant, so the DC point is the
	// answer.
	return g.Simulate(ctx, avg, 0, 10, 5)
}

// TreeInjections extracts one Injection per clock-tree node for the given
// source edge: each buffering element's characterized IDD/ISS pulses,
// shifted to its switching time, at its placement.
func TreeInjections(t *clocktree.Tree, tm *clocktree.Timing, e cell.Edge) []Injection {
	out := make([]Injection, 0, t.Len())
	t.Walk(func(n *clocktree.Node) {
		idd, iss := t.NodeCurrents(tm, n.ID, e)
		out = append(out, Injection{X: n.X, Y: n.Y, IDD: idd, ISS: iss})
	})
	return out
}

// MeasureTreeNoise simulates both clock edges of the tree against the grid
// and returns the worse VDD and Gnd deviations (volts). The simulation
// window covers all injection activity plus settle time.
func (g *Grid) MeasureTreeNoise(ctx context.Context, t *clocktree.Tree, tm *clocktree.Timing) (vddNoise, gndNoise float64, err error) {
	for _, e := range []cell.Edge{cell.Rising, cell.Falling} {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		inj := TreeInjections(t, tm, e)
		t1 := 0.0
		for _, in := range inj {
			t1 = math.Max(t1, math.Max(in.IDD.Last(), in.ISS.Last()))
		}
		rep, simErr := g.Simulate(ctx, inj, 0, t1+100, 2)
		if simErr != nil {
			return 0, 0, simErr
		}
		vddNoise = math.Max(vddNoise, rep.VDDNoise)
		gndNoise = math.Max(gndNoise, rep.GndNoise)
	}
	return vddNoise, gndNoise, nil
}
