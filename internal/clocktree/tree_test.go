package clocktree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wavemin/internal/cell"
)

// buildBalanced builds a depth-2 tree: root buffer driving two mid buffers
// each driving two leaf buffers with FF loads. Wire parasitics uniform.
func buildBalanced(t testing.TB) (*Tree, *cell.Library) {
	lib := cell.DefaultLibrary()
	buf8 := lib.MustByName("BUF_X8")
	buf4 := lib.MustByName("BUF_X4")
	tr := New(lib.MustByName("BUF_X16"), 50, 50)
	m1 := tr.AddChild(tr.Root(), buf8, 25, 50, 0.1, 20)
	m2 := tr.AddChild(tr.Root(), buf8, 75, 50, 0.1, 20)
	for _, m := range []NodeID{m1, m2} {
		for i := 0; i < 2; i++ {
			leaf := tr.AddChild(m, buf4, float64(10+60*i), 25, 0.05, 10)
			tr.SetSinkCap(leaf, 8)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr, lib
}

func TestTreeStructure(t *testing.T) {
	tr, _ := buildBalanced(t)
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}
	if got := len(tr.Leaves()); got != 4 {
		t.Fatalf("leaves = %d, want 4", got)
	}
	if got := len(tr.NonLeaves()); got != 3 {
		t.Fatalf("non-leaves = %d, want 3", got)
	}
	count := 0
	tr.Walk(func(n *Node) { count++ })
	if count != 7 {
		t.Fatalf("Walk visited %d, want 7", count)
	}
	leaf := tr.Leaves()[0]
	path := tr.PathToRoot(leaf)
	if len(path) != 3 || path[len(path)-1] != tr.Root() {
		t.Fatalf("path = %v", path)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr, _ := buildBalanced(t)
	tr.Node(3).Parent = 99
	if err := tr.Validate(); err == nil {
		t.Fatal("bad parent should fail validation")
	}
	tr2, _ := buildBalanced(t)
	tr2.Node(2).Cell = nil
	if err := tr2.Validate(); err == nil {
		t.Fatal("missing cell should fail validation")
	}
}

func TestPolarityParity(t *testing.T) {
	tr, lib := buildBalanced(t)
	inv := lib.MustByName("INV_X4")
	leaves := tr.Leaves()
	if !tr.PolarityOf(leaves[0]) {
		t.Fatal("all-buffer tree must have positive leaves")
	}
	tr.SetCell(leaves[0], inv)
	if tr.PolarityOf(leaves[0]) {
		t.Fatal("inverter leaf must be negative")
	}
	// Inverter at the mid node flips its subtree's leaves.
	mid := tr.Node(leaves[1]).Parent
	tr.SetCell(mid, lib.MustByName("INV_X8"))
	if tr.PolarityOf(leaves[1]) {
		t.Fatal("leaf under one inverter must be negative")
	}
	// Leaf 0 sits under the other mid; unaffected... unless same mid.
	if tr.Node(leaves[0]).Parent == mid {
		// leaf0 has its own inverter AND an inverting parent: positive again.
		if !tr.PolarityOf(leaves[0]) {
			t.Fatal("two inversions must cancel")
		}
	}
}

func TestEdgeAtInput(t *testing.T) {
	tr, lib := buildBalanced(t)
	leaf := tr.Leaves()[0]
	if tr.EdgeAtInput(leaf, cell.Rising) != cell.Rising {
		t.Fatal("buffer-only path must preserve edge")
	}
	// The leaf's own cell must NOT affect its input edge.
	tr.SetCell(leaf, lib.MustByName("INV_X4"))
	if tr.EdgeAtInput(leaf, cell.Rising) != cell.Rising {
		t.Fatal("leaf's own inverter must not flip its input edge")
	}
	// An inverting ancestor does.
	tr.SetCell(tr.Node(leaf).Parent, lib.MustByName("INV_X8"))
	if tr.EdgeAtInput(leaf, cell.Rising) != cell.Falling {
		t.Fatal("inverting parent must flip the input edge")
	}
}

func TestTimingMonotoneDownTree(t *testing.T) {
	tr, _ := buildBalanced(t)
	tm := tr.ComputeTiming(NominalMode)
	tr.Walk(func(n *Node) {
		if n.Parent == NoNode {
			return
		}
		if tm.ATIn[n.ID] < tm.ATOut[n.Parent] {
			t.Errorf("node %d: ATIn %g before parent ATOut %g", n.ID, tm.ATIn[n.ID], tm.ATOut[n.Parent])
		}
		if tm.ATOut[n.ID] <= tm.ATIn[n.ID] {
			t.Errorf("node %d: non-positive cell delay", n.ID)
		}
	})
}

func TestBalancedTreeHasZeroSkew(t *testing.T) {
	tr, _ := buildBalanced(t)
	tm := tr.ComputeTiming(NominalMode)
	if s := tm.Skew(tr); s > 1e-9 {
		t.Fatalf("symmetric tree skew = %g, want 0", s)
	}
}

func TestResizingLeafChangesSkew(t *testing.T) {
	tr, lib := buildBalanced(t)
	tr.SetCell(tr.Leaves()[0], lib.MustByName("BUF_X16"))
	tm := tr.ComputeTiming(NominalMode)
	if s := tm.Skew(tr); s <= 0 {
		t.Fatalf("resized leaf should introduce skew, got %g", s)
	}
}

func TestLowVDDSlowsSubtree(t *testing.T) {
	tr, _ := buildBalanced(t)
	leaves := tr.Leaves()
	island := tr.Node(leaves[2]).Parent
	tr.SetDomainSubtree(island, "islandA")
	mode := Mode{Name: "lowA", Supplies: map[string]float64{"islandA": 0.9}}
	tmN := tr.ComputeTiming(NominalMode)
	tmL := tr.ComputeTiming(mode)
	if tmL.ATOut[leaves[2]] <= tmN.ATOut[leaves[2]] {
		t.Fatal("0.9 V island leaf should be slower")
	}
	// Leaves outside the island keep their arrival (root/parent unaffected).
	outside := leaves[0]
	if math.Abs(tmL.ATOut[outside]-tmN.ATOut[outside]) > 1e-9 {
		t.Fatal("leaf outside island moved")
	}
	if tmL.Skew(tr) <= tmN.Skew(tr) {
		t.Fatal("voltage island must create skew")
	}
}

func TestSkewAcrossModesAndMeetsSkew(t *testing.T) {
	tr, _ := buildBalanced(t)
	island := tr.Node(tr.Leaves()[2]).Parent
	tr.SetDomainSubtree(island, "islandA")
	modes := []Mode{
		NominalMode,
		{Name: "low", Supplies: map[string]float64{"islandA": 0.9}},
	}
	worst, in := tr.SkewAcrossModes(modes)
	if in.Name != "low" || worst <= 0 {
		t.Fatalf("worst skew %g in %q", worst, in.Name)
	}
	if !tr.MeetsSkew(worst+1, modes) {
		t.Fatal("MeetsSkew false above worst")
	}
	if tr.MeetsSkew(worst-1, modes) {
		t.Fatal("MeetsSkew true below worst")
	}
}

func TestADBSettingsPerMode(t *testing.T) {
	tr, lib := buildBalanced(t)
	leaf := tr.Leaves()[0]
	adb := lib.MustByName("ADB_X8")
	tr.SetCell(leaf, adb)
	tr.SetAdjustSteps(leaf, "m2", 5)
	tmNom := tr.ComputeTiming(NominalMode)
	tmM2 := tr.ComputeTiming(Mode{Name: "m2"})
	wantDelta := 5 * adb.StepPs
	got := tmM2.ATOut[leaf] - tmNom.ATOut[leaf]
	if math.Abs(got-wantDelta) > 1e-9 {
		t.Fatalf("ADB per-mode delta = %g, want %g", got, wantDelta)
	}
}

func TestSetAdjustStepsPanics(t *testing.T) {
	tr, lib := buildBalanced(t)
	leaf := tr.Leaves()[0]
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-adjustable cell should panic")
			}
		}()
		tr.SetAdjustSteps(leaf, "m", 1)
	}()
	tr.SetCell(leaf, lib.MustByName("ADB_X8"))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range steps should panic")
			}
		}()
		tr.SetAdjustSteps(leaf, "m", 999)
	}()
}

func TestCloneIndependence(t *testing.T) {
	tr, lib := buildBalanced(t)
	leaf := tr.Leaves()[0]
	tr.SetCell(leaf, lib.MustByName("ADB_X8"))
	tr.SetAdjustSteps(leaf, "m", 3)
	cp := tr.Clone()
	cp.SetCell(leaf, lib.MustByName("BUF_X4"))
	cp.Node(tr.Leaves()[1]).SinkCap = 999
	if tr.Node(leaf).Cell.Name != "ADB_X8" {
		t.Fatal("clone mutation leaked into original (cell)")
	}
	if tr.Node(tr.Leaves()[1]).SinkCap == 999 {
		t.Fatal("clone mutation leaked into original (sink cap)")
	}
	if cp.Node(leaf).AdjustSteps["m"] != 3 {
		t.Fatal("clone lost ADB settings")
	}
}

func TestCurrentsAlignToArrivals(t *testing.T) {
	tr, _ := buildBalanced(t)
	tm := tr.ComputeTiming(NominalMode)
	leaf := tr.Leaves()[0]
	idd, _ := tr.NodeCurrents(tm, leaf, cell.Rising)
	_, at := idd.Peak()
	// Peak IDD should land near the leaf's output switching time.
	if at < tm.ATIn[leaf] || at > tm.ATOut[leaf]+50 {
		t.Fatalf("leaf current peak at %g outside [%g, %g+50]", at, tm.ATIn[leaf], tm.ATOut[leaf])
	}
}

func TestLeafPlusNonLeafEqualsTree(t *testing.T) {
	tr, lib := buildBalanced(t)
	tr.SetCell(tr.Leaves()[1], lib.MustByName("INV_X4"))
	tm := tr.ComputeTiming(NominalMode)
	for _, e := range []cell.Edge{cell.Rising, cell.Falling} {
		liDD, liSS := tr.LeafCurrents(tm, e)
		niDD, niSS := tr.NonLeafCurrents(tm, e)
		tiDD, tiSS := tr.TreeCurrents(tm, e)
		sumDD := liDD.Charge() + niDD.Charge()
		sumSS := liSS.Charge() + niSS.Charge()
		if math.Abs(sumDD-tiDD.Charge()) > 1e-6*math.Max(1, tiDD.Charge()) {
			t.Fatalf("edge %v: IDD charge %g+%g != %g", e, liDD.Charge(), niDD.Charge(), tiDD.Charge())
		}
		if math.Abs(sumSS-tiSS.Charge()) > 1e-6*math.Max(1, tiSS.Charge()) {
			t.Fatalf("edge %v: ISS mismatch", e)
		}
	}
}

func TestInverterLeafMovesIDDPulseToFallingEdge(t *testing.T) {
	// The polarity mechanism itself: with a buffer leaf the big IDD pulse
	// appears at the rising source edge; with an inverter leaf it moves to
	// the falling source edge.
	tr, lib := buildBalanced(t)
	leaf := tr.Leaves()[0]
	tm := tr.ComputeTiming(NominalMode)
	iddRiseBuf, _ := tr.NodeCurrents(tm, leaf, cell.Rising)
	pBufRise, _ := iddRiseBuf.Peak()

	tr.SetCell(leaf, lib.MustByName("INV_X4"))
	tm = tr.ComputeTiming(NominalMode)
	iddRiseInv, _ := tr.NodeCurrents(tm, leaf, cell.Rising)
	iddFallInv, _ := tr.NodeCurrents(tm, leaf, cell.Falling)
	pInvRise, _ := iddRiseInv.Peak()
	pInvFall, _ := iddFallInv.Peak()
	if pInvRise >= pBufRise {
		t.Fatalf("inverter leaf should shrink rising-edge IDD: %g vs %g", pInvRise, pBufRise)
	}
	if pInvFall <= pInvRise {
		t.Fatalf("inverter leaf IDD should peak at falling edge: %g vs %g", pInvFall, pInvRise)
	}
}

func TestPeakCurrentPositive(t *testing.T) {
	tr, _ := buildBalanced(t)
	tm := tr.ComputeTiming(NominalMode)
	if p := tr.PeakCurrent(tm); p <= 0 {
		t.Fatalf("peak current %g", p)
	}
}

// Property: leaf polarity equals parity of inverting cells on root path,
// under random cell re-assignments.
func TestPropertyPolarityMatchesParity(t *testing.T) {
	lib := cell.DefaultLibrary()
	cells := []*cell.Cell{
		lib.MustByName("BUF_X4"), lib.MustByName("BUF_X8"),
		lib.MustByName("INV_X4"), lib.MustByName("INV_X8"),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, _ := buildBalanced(t)
		for id := 0; id < tr.Len(); id++ {
			tr.SetCell(NodeID(id), cells[rng.Intn(len(cells))])
		}
		for _, leaf := range tr.Leaves() {
			parity := 0
			for _, id := range tr.PathToRoot(leaf) {
				if tr.Node(id).Cell.Inverting() {
					parity++
				}
			}
			if tr.PolarityOf(leaf) != (parity%2 == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: skew is invariant under uniform extra delay on every leaf.
func TestPropertySkewShiftInvariant(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		tr, lib := buildBalanced(t)
		adb := lib.MustByName("ADB_X8")
		steps := rng.Intn(adb.MaxSteps + 1)
		// Replace ALL leaves with the same ADB at the same setting: arrival
		// times all shift equally, skew must not change materially.
		tm0 := tr.ComputeTiming(NominalMode)
		s0 := tm0.Skew(tr)
		for _, leaf := range tr.Leaves() {
			tr.SetCell(leaf, adb)
			tr.SetAdjustSteps(leaf, NominalMode.Name, steps)
		}
		tm1 := tr.ComputeTiming(NominalMode)
		s1 := tm1.Skew(tr)
		return math.Abs(s0-s1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
