package clocktree

import (
	"fmt"
	"math"
)

// Mode is a power mode: a named assignment of supply voltages to voltage
// domains. Designs with a single power mode use NominalMode.
type Mode struct {
	Name     string
	Supplies map[string]float64 // domain → VDD, volts
}

// NominalVDD is the supply used for unmapped domains.
const NominalVDD = 1.1

// NominalMode is the single-power-mode operating point: every domain at
// NominalVDD.
var NominalMode = Mode{Name: "nominal", Supplies: nil}

// VDDOf returns the mode's supply for a domain, falling back to NominalVDD.
func (m Mode) VDDOf(domain string) float64 {
	if v, ok := m.Supplies[domain]; ok {
		return v
	}
	return NominalVDD
}

// Timing holds the per-node timing solution of one tree in one mode.
// Arrays are indexed by NodeID.
type Timing struct {
	Mode Mode

	Load    []float64 // capacitive load on each node's output, fF
	ATIn    []float64 // clock arrival at the node's input, ps
	ATOut   []float64 // clock arrival at the node's output, ps
	SlewIn  []float64 // input transition, ps
	SlewOut []float64 // output transition, ps
}

// rootInputSlew is the transition time of the clock source driving the
// root, ps.
const rootInputSlew = 25.0

// wireSlewDegrade is how much of a wire's own RC time constant is added to
// the slew as the edge propagates along it.
const wireSlewDegrade = 0.7

// ComputeTiming solves loads, Elmore arrival times, and slews for the tree
// in the given mode.
//
// Model: a node's output load is the sum over children of (wire cap +
// child input cap) plus its sink cap. A node's delay is its cell delay at
// that load and the mode's VDD for its domain, plus its capacitor-bank
// setting for the mode. The wire from a parent to a child adds the Elmore
// term Rw·(Cw/2 + Cin(child)).
func (t *Tree) ComputeTiming(mode Mode) *Timing {
	n := len(t.nodes)
	tm := &Timing{
		Mode: mode,
		Load: make([]float64, n), ATIn: make([]float64, n), ATOut: make([]float64, n),
		SlewIn: make([]float64, n), SlewOut: make([]float64, n),
	}
	// Loads: children are created after parents, so a reverse sweep sees
	// children first — but load only needs immediate children, computable
	// in any order.
	for _, nd := range t.nodes {
		load := nd.SinkCap
		for _, chID := range nd.Children {
			ch := t.nodes[chID]
			load += ch.WireCap + ch.Cell.InputCap()
		}
		tm.Load[nd.ID] = load
	}
	// Arrival times and slews: explicit preorder (parents before children;
	// IDs are not necessarily ordered once wires have been split).
	t.Walk(func(nd *Node) {
		vdd := mode.VDDOf(nd.Domain)
		if nd.Parent == NoNode {
			tm.ATIn[nd.ID] = 0
			tm.SlewIn[nd.ID] = rootInputSlew
		} else {
			p := t.nodes[nd.Parent]
			wireDelay := nd.WireRes * (nd.WireCap/2 + nd.Cell.InputCap())
			tm.ATIn[nd.ID] = tm.ATOut[p.ID] + wireDelay
			tm.SlewIn[nd.ID] = tm.SlewOut[p.ID] + wireSlewDegrade*nd.WireRes*nd.WireCap
		}
		d := (nd.Cell.Delay(tm.Load[nd.ID], vdd) + nd.AdjustDelay(mode.Name)) * nd.delayScale()
		tm.ATOut[nd.ID] = tm.ATIn[nd.ID] + d
		tm.SlewOut[nd.ID] = nd.Cell.Slew(tm.Load[nd.ID], vdd)
	})
	return tm
}

// LeafArrivals returns the arrival times at the outputs of all leaves, in
// leaf ID order — the paper's "arrival times of sinks".
func (tm *Timing) LeafArrivals(t *Tree) map[NodeID]float64 {
	out := make(map[NodeID]float64)
	for _, id := range t.Leaves() {
		out[id] = tm.ATOut[id]
	}
	return out
}

// Skew returns the clock skew: max − min leaf arrival time.
func (tm *Timing) Skew(t *Tree) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, id := range t.Leaves() {
		at := tm.ATOut[id]
		if at < lo {
			lo = at
		}
		if at > hi {
			hi = at
		}
	}
	if math.IsInf(lo, 1) {
		return 0
	}
	return hi - lo
}

// SkewAcrossModes returns the worst skew over the given modes and the mode
// that attains it.
func (t *Tree) SkewAcrossModes(modes []Mode) (worst float64, in Mode) {
	for i, m := range modes {
		s := t.ComputeTiming(m).Skew(t)
		if i == 0 || s > worst {
			worst, in = s, m
		}
	}
	return worst, in
}

// MeetsSkew reports whether the tree's skew is within kappa in every mode.
func (t *Tree) MeetsSkew(kappa float64, modes []Mode) bool {
	for _, m := range modes {
		if t.ComputeTiming(m).Skew(t) > kappa+1e-9 {
			return false
		}
	}
	return true
}

// String renders a short timing summary.
func (tm *Timing) String() string {
	return fmt.Sprintf("timing{mode=%s, %d nodes}", tm.Mode.Name, len(tm.ATOut))
}
