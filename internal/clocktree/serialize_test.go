package clocktree

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"wavemin/internal/cell"
)

func TestJSONRoundTrip(t *testing.T) {
	tr, lib := buildBalanced(t)
	// Decorate with domains, ADB settings, and mixed cells.
	tr.SetDomainSubtree(tr.Leaves()[2], "islandA")
	tr.SetCell(tr.Leaves()[0], lib.MustByName("ADB_X8"))
	tr.SetAdjustSteps(tr.Leaves()[0], "M2", 5)
	tr.SetCell(tr.Leaves()[1], lib.MustByName("INV_X4"))

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf, lib)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("node count %d vs %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		a, b := tr.Node(NodeID(i)), got.Node(NodeID(i))
		if a.Cell.Name != b.Cell.Name || a.Domain != b.Domain ||
			a.X != b.X || a.WireRes != b.WireRes || a.SinkCap != b.SinkCap {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// Timing must agree exactly (including ADB settings).
	mode := Mode{Name: "M2"}
	tmA := tr.ComputeTiming(mode)
	tmB := got.ComputeTiming(mode)
	for i := range tmA.ATOut {
		if math.Abs(tmA.ATOut[i]-tmB.ATOut[i]) > 1e-12 {
			t.Fatalf("timing mismatch at node %d", i)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	lib := cell.DefaultLibrary()
	cases := []string{
		``,
		`{"format":"bogus","nodes":[]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"NOPE","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":5,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0},{"id":0,"parent":0,"cell":"BUF_X8","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":7,"cell":"BUF_X8","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`,
	}
	for i, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src), lib); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestReadJSONRejectsInvalidValues: untrusted JSON carrying values that
// would corrupt timing or trip invariant panics deep in the engine must be
// rejected at load time with a descriptive error.
func TestReadJSONRejectsInvalidValues(t *testing.T) {
	lib := cell.DefaultLibrary()
	const hdr = `{"format":"wavemin-clocktree-v1","nodes":[`
	cases := []struct {
		name string
		src  string
	}{
		{"negative wire_res",
			hdr + `{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":0,"cell":"BUF_X8","x":1,"y":1,"wire_res":-2}]}`},
		{"negative wire_cap",
			hdr + `{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":0,"cell":"BUF_X8","x":1,"y":1,"wire_cap":-8}]}`},
		{"negative sink_cap",
			hdr + `{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":0,"cell":"BUF_X8","x":1,"y":1,"sink_cap":-1}]}`},
		{"adjust steps on plain cell",
			hdr + `{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0,"adjust_steps":{"M1":3}}]}`},
		{"adjust steps out of range",
			hdr + `{"id":0,"parent":-1,"cell":"ADB_X8","x":0,"y":0,"adjust_steps":{"M1":100000}}]}`},
		{"negative adjust steps",
			hdr + `{"id":0,"parent":-1,"cell":"ADB_X8","x":0,"y":0,"adjust_steps":{"M1":-1}}]}`},
		{"two-node parent cycle",
			hdr + `{"id":0,"parent":1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":0,"cell":"BUF_X8","x":1,"y":1}]}`},
		{"non-finite coordinate",
			hdr + `{"id":0,"parent":-1,"cell":"BUF_X8","x":1e999,"y":0}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tc.src), lib); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestJSONDefaultDomain(t *testing.T) {
	lib := cell.DefaultLibrary()
	src := `{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`
	tr, err := ReadJSON(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Node(0).Domain != DefaultDomain {
		t.Fatalf("domain = %q", tr.Node(0).Domain)
	}
}
