package clocktree

import (
	"fmt"
	"io"
)

// WriteDOT renders the tree in Graphviz DOT form for visual inspection:
// one node per buffering element labeled with its cell (and per-mode bank
// settings for adjustable cells), shaped by role — box for buffers,
// inverted triangle for inverters, diamond for adjustable cells — and one
// edge per wire labeled with its Elmore-relevant parasitics.
func (t *Tree) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [fontsize=9];\n", title); err != nil {
		return err
	}
	var err error
	t.Walk(func(n *Node) {
		if err != nil {
			return
		}
		shape := "box"
		switch {
		case n.Cell.Adjustable():
			shape = "diamond"
		case n.Cell.Inverting():
			shape = "invtriangle"
		}
		label := fmt.Sprintf("%d: %s", n.ID, n.Cell.Name)
		if n.IsLeaf() {
			label += fmt.Sprintf("\\n%.1f fF", n.SinkCap)
		}
		if n.Cell.Adjustable() && len(n.AdjustSteps) > 0 {
			label += fmt.Sprintf("\\nsteps %v", n.AdjustSteps)
		}
		_, err = fmt.Fprintf(w, "  n%d [label=%q shape=%s];\n", n.ID, label, shape)
		if err != nil || n.Parent == NoNode {
			return
		}
		_, err = fmt.Fprintf(w, "  n%d -> n%d [label=\"%.2gkΩ/%.3gfF\"];\n",
			n.Parent, n.ID, n.WireRes, n.WireCap)
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "}")
	return err
}
