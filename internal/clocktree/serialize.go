package clocktree

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"wavemin/internal/cell"
)

// jsonNode is the serialized form of one tree node. Cells are stored by
// library name and re-resolved on load, so a serialized tree is portable
// across processes sharing a cell library.
type jsonNode struct {
	ID          NodeID         `json:"id"`
	Parent      NodeID         `json:"parent"`
	Cell        string         `json:"cell"`
	X           float64        `json:"x"`
	Y           float64        `json:"y"`
	WireRes     float64        `json:"wire_res,omitempty"`
	WireCap     float64        `json:"wire_cap,omitempty"`
	SinkCap     float64        `json:"sink_cap,omitempty"`
	Domain      string         `json:"domain,omitempty"`
	AdjustSteps map[string]int `json:"adjust_steps,omitempty"`
}

type jsonTree struct {
	Format string     `json:"format"`
	Nodes  []jsonNode `json:"nodes"`
}

// jsonFormat tags the serialization for forward compatibility.
const jsonFormat = "wavemin-clocktree-v1"

// WriteJSON serializes the tree.
func (t *Tree) WriteJSON(w io.Writer) error {
	out := jsonTree{Format: jsonFormat, Nodes: make([]jsonNode, 0, len(t.nodes))}
	for _, n := range t.nodes {
		out.Nodes = append(out.Nodes, jsonNode{
			ID: n.ID, Parent: n.Parent, Cell: n.Cell.Name,
			X: n.X, Y: n.Y, WireRes: n.WireRes, WireCap: n.WireCap,
			SinkCap: n.SinkCap, Domain: n.Domain, AdjustSteps: n.AdjustSteps,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a tree, resolving cells by name from lib.
func ReadJSON(r io.Reader, lib *cell.Library) (*Tree, error) {
	var in jsonTree
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("clocktree: decode: %w", err)
	}
	if in.Format != jsonFormat {
		return nil, fmt.Errorf("clocktree: unknown format %q", in.Format)
	}
	if len(in.Nodes) == 0 {
		return nil, fmt.Errorf("clocktree: empty tree")
	}
	t := &Tree{nodes: make([]*Node, len(in.Nodes))}
	for _, jn := range in.Nodes {
		if int(jn.ID) < 0 || int(jn.ID) >= len(in.Nodes) {
			return nil, fmt.Errorf("clocktree: node ID %d out of range", jn.ID)
		}
		if t.nodes[jn.ID] != nil {
			return nil, fmt.Errorf("clocktree: duplicate node ID %d", jn.ID)
		}
		c, ok := lib.ByName(jn.Cell)
		if !ok {
			return nil, fmt.Errorf("clocktree: node %d references unknown cell %q", jn.ID, jn.Cell)
		}
		// Untrusted input: reject values that would trip invariant panics
		// (or corrupt timing) deep inside the engine later.
		for _, v := range [...]struct {
			name string
			val  float64
		}{
			{"x", jn.X}, {"y", jn.Y},
			{"wire_res", jn.WireRes}, {"wire_cap", jn.WireCap},
			{"sink_cap", jn.SinkCap},
		} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
				return nil, fmt.Errorf("clocktree: node %d has non-finite %s %g", jn.ID, v.name, v.val)
			}
		}
		if jn.WireRes < 0 || jn.WireCap < 0 {
			return nil, fmt.Errorf("clocktree: node %d has negative wire parasitics R=%g C=%g", jn.ID, jn.WireRes, jn.WireCap)
		}
		if jn.SinkCap < 0 {
			return nil, fmt.Errorf("clocktree: node %d has negative sink cap %g", jn.ID, jn.SinkCap)
		}
		if len(jn.AdjustSteps) > 0 && !c.Adjustable() {
			return nil, fmt.Errorf("clocktree: node %d has adjust steps but cell %s is not adjustable", jn.ID, c.Name)
		}
		for mode, steps := range jn.AdjustSteps {
			if steps < 0 || steps > c.MaxSteps {
				return nil, fmt.Errorf("clocktree: node %d mode %q: steps %d out of range [0,%d]", jn.ID, mode, steps, c.MaxSteps)
			}
		}
		domain := jn.Domain
		if domain == "" {
			domain = DefaultDomain
		}
		t.nodes[jn.ID] = &Node{
			ID: jn.ID, Parent: jn.Parent, Cell: c,
			X: jn.X, Y: jn.Y, WireRes: jn.WireRes, WireCap: jn.WireCap,
			SinkCap: jn.SinkCap, Domain: domain, AdjustSteps: jn.AdjustSteps,
		}
	}
	// Rebuild children lists in ID order for determinism.
	for _, n := range t.nodes {
		if n.Parent == NoNode {
			continue
		}
		if int(n.Parent) < 0 || int(n.Parent) >= len(t.nodes) {
			return nil, fmt.Errorf("clocktree: node %d has bad parent %d", n.ID, n.Parent)
		}
		p := t.nodes[n.Parent]
		p.Children = append(p.Children, n.ID)
	}
	if t.nodes[0].Parent != NoNode {
		return nil, fmt.Errorf("clocktree: node 0 must be the root")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
