// Package clocktree models buffered clock trees: topology, placement,
// wire parasitics, buffering-element assignment, per-power-mode Elmore
// timing, clock skew, signal polarity, and supply-current extraction.
//
// A tree node is one buffering element (buffer, inverter, ADB or ADI)
// together with the wire that connects it to its parent's output. Leaf
// nodes ("sinks" in the paper) drive groups of flip-flops, modeled as a
// lumped sink capacitance. The paper's polarity assignment re-maps the
// *cells* at leaf nodes; the topology never changes.
package clocktree

import (
	"fmt"

	"wavemin/internal/cell"
)

// NodeID indexes a node within its tree. IDs are dense, assigned in
// creation order, with the root always 0.
type NodeID int

// NoNode is the parent of the root.
const NoNode NodeID = -1

// DefaultDomain is the voltage domain nodes belong to unless assigned.
const DefaultDomain = "core"

// Node is one buffering element of a clock tree.
type Node struct {
	ID       NodeID
	Parent   NodeID
	Children []NodeID

	X, Y float64 // placement, µm

	// Cell is the buffering element instantiated at this node.
	Cell *cell.Cell

	// WireRes/WireCap are the parasitics of the wire from the parent's
	// output to this node's input (kΩ, fF). Zero for the root.
	WireRes, WireCap float64

	// SinkCap is the lumped flip-flop load on a leaf's output, fF.
	SinkCap float64

	// Domain names the voltage island this node sits in.
	Domain string

	// AdjustSteps holds an adjustable cell's capacitor-bank setting per
	// power-mode name (number of engaged steps). Ignored for plain cells.
	AdjustSteps map[string]int

	// DelayScale and CurrentScale model per-instance process variation
	// (buffer width, threshold voltage): the node's cell delay and supply
	// currents are multiplied by them. Zero means 1.0 (nominal).
	DelayScale   float64
	CurrentScale float64
}

// delayScale returns the node's effective delay multiplier.
func (n *Node) delayScale() float64 {
	if n.DelayScale == 0 {
		return 1
	}
	return n.DelayScale
}

// currentScale returns the node's effective current multiplier.
func (n *Node) currentScale() float64 {
	if n.CurrentScale == 0 {
		return 1
	}
	return n.CurrentScale
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// AdjustDelay returns the extra delay of the node's capacitor bank in the
// given mode, in ps. Zero for non-adjustable cells and unset modes.
func (n *Node) AdjustDelay(modeName string) float64 {
	if n.Cell == nil || !n.Cell.Adjustable() || n.AdjustSteps == nil {
		return 0
	}
	return float64(n.AdjustSteps[modeName]) * n.Cell.StepPs
}

// Tree is a buffered clock tree. Mutations (AddChild, SetCell, …) are not
// concurrency-safe; timing is computed on demand via ComputeTiming.
type Tree struct {
	nodes []*Node
}

// New creates a tree containing only a root with the given cell and
// placement.
func New(rootCell *cell.Cell, x, y float64) *Tree {
	t := &Tree{}
	t.nodes = append(t.nodes, &Node{
		ID: 0, Parent: NoNode, Cell: rootCell, X: x, Y: y, Domain: DefaultDomain,
	})
	return t
}

// Root returns the root node ID (always 0).
func (t *Tree) Root() NodeID { return 0 }

// Len returns the number of nodes (the paper's n).
func (t *Tree) Len() int { return len(t.nodes) }

// Node returns the node with the given ID. The returned pointer aliases
// tree state; mutate via the Set* helpers to keep invariants obvious.
func (t *Tree) Node(id NodeID) *Node { return t.nodes[id] }

// AddChild creates a new node under parent with the given cell, placement
// and connecting-wire parasitics, and returns its ID.
func (t *Tree) AddChild(parent NodeID, c *cell.Cell, x, y, wireRes, wireCap float64) NodeID {
	if wireRes < 0 || wireCap < 0 {
		panic(fmt.Sprintf("clocktree: negative wire parasitics R=%g C=%g", wireRes, wireCap))
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, &Node{
		ID: id, Parent: parent, Cell: c, X: x, Y: y,
		WireRes: wireRes, WireCap: wireCap, Domain: t.nodes[parent].Domain,
	})
	t.nodes[parent].Children = append(t.nodes[parent].Children, id)
	return id
}

// SetCell swaps the buffering element at a node — the polarity-assignment
// primitive. The topology, placement and wires are untouched.
func (t *Tree) SetCell(id NodeID, c *cell.Cell) { t.nodes[id].Cell = c }

// SetSinkCap marks a node as driving a flip-flop group of the given
// capacitance.
func (t *Tree) SetSinkCap(id NodeID, capFF float64) {
	if capFF < 0 {
		panic("clocktree: negative sink cap")
	}
	t.nodes[id].SinkCap = capFF
}

// SetDomain assigns the node and (by later inheritance at AddChild time)
// its future children to a voltage island.
func (t *Tree) SetDomain(id NodeID, domain string) { t.nodes[id].Domain = domain }

// SetDomainSubtree assigns the whole subtree under id to a voltage island.
func (t *Tree) SetDomainSubtree(id NodeID, domain string) {
	t.nodes[id].Domain = domain
	for _, ch := range t.nodes[id].Children {
		t.SetDomainSubtree(ch, domain)
	}
}

// SetAdjustSteps sets an adjustable node's capacitor-bank engagement for a
// mode. Panics if the node's cell is not adjustable or steps are out of
// range.
func (t *Tree) SetAdjustSteps(id NodeID, modeName string, steps int) {
	n := t.nodes[id]
	if n.Cell == nil || !n.Cell.Adjustable() {
		panic(fmt.Sprintf("clocktree: node %d (%v) is not adjustable", id, n.Cell))
	}
	if steps < 0 || steps > n.Cell.MaxSteps {
		panic(fmt.Sprintf("clocktree: steps %d out of range [0,%d]", steps, n.Cell.MaxSteps))
	}
	if n.AdjustSteps == nil {
		n.AdjustSteps = make(map[string]int)
	}
	n.AdjustSteps[modeName] = steps
}

// Leaves returns the IDs of all leaf nodes (the paper's L), in ID order.
func (t *Tree) Leaves() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.IsLeaf() {
			out = append(out, n.ID)
		}
	}
	return out
}

// NonLeaves returns the IDs of all internal nodes, in ID order.
func (t *Tree) NonLeaves() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if !n.IsLeaf() {
			out = append(out, n.ID)
		}
	}
	return out
}

// Walk visits every node in preorder (parents before children).
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(NodeID)
	rec = func(id NodeID) {
		visit(t.nodes[id])
		for _, ch := range t.nodes[id].Children {
			rec(ch)
		}
	}
	rec(t.Root())
}

// PathToRoot returns the node IDs from id up to and including the root.
func (t *Tree) PathToRoot(id NodeID) []NodeID {
	var out []NodeID
	for cur := id; cur != NoNode; cur = t.nodes[cur].Parent {
		out = append(out, cur)
	}
	return out
}

// InvertingDepth returns the number of inverting cells on the path from
// the root down to and including id. Leaf polarity is its parity.
func (t *Tree) InvertingDepth(id NodeID) int {
	n := 0
	for cur := id; cur != NoNode; cur = t.nodes[cur].Parent {
		if c := t.nodes[cur].Cell; c != nil && c.Inverting() {
			n++
		}
	}
	return n
}

// PolarityOf reports a node's polarity: true for positive (output switches
// with the clock source), false for negative. Per the paper's definition
// (footnote 1), this is the parity of inverting cells on the root path
// including the node itself.
func (t *Tree) PolarityOf(id NodeID) bool { return t.InvertingDepth(id)%2 == 0 }

// EdgeAtInput returns the clock edge seen at the node's *input* when the
// source launches edge e: the source edge flipped once per inverting cell
// strictly above the node.
func (t *Tree) EdgeAtInput(id NodeID, e cell.Edge) cell.Edge {
	flips := t.InvertingDepth(id)
	if c := t.nodes[id].Cell; c != nil && c.Inverting() {
		flips--
	}
	if flips%2 == 1 {
		return e.Opposite()
	}
	return e
}

// Validate checks structural invariants: dense IDs, parent/child
// consistency, cells everywhere, acyclicity by construction.
func (t *Tree) Validate() error {
	for i, n := range t.nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("clocktree: node %d has ID %d", i, n.ID)
		}
		if n.Cell == nil {
			return fmt.Errorf("clocktree: node %d has no cell", i)
		}
		if i == 0 {
			if n.Parent != NoNode {
				return fmt.Errorf("clocktree: root has parent %d", n.Parent)
			}
		} else {
			if n.Parent < 0 || int(n.Parent) >= len(t.nodes) {
				return fmt.Errorf("clocktree: node %d has bad parent %d", i, n.Parent)
			}
			found := false
			for _, ch := range t.nodes[n.Parent].Children {
				if ch == n.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("clocktree: node %d missing from parent %d's children", i, n.Parent)
			}
		}
		for _, ch := range n.Children {
			if ch < 0 || int(ch) >= len(t.nodes) || ch == n.ID {
				return fmt.Errorf("clocktree: node %d has bad child %d", i, ch)
			}
			if t.nodes[ch].Parent != n.ID {
				return fmt.Errorf("clocktree: child %d does not point back to %d", ch, i)
			}
		}
	}
	// Reachability/acyclicity: a preorder walk from the root must visit
	// every node exactly once.
	seen := make([]bool, len(t.nodes))
	count := 0
	t.Walk(func(n *Node) {
		if !seen[n.ID] {
			seen[n.ID] = true
			count++
		}
	})
	if count != len(t.nodes) {
		return fmt.Errorf("clocktree: %d of %d nodes reachable from root", count, len(t.nodes))
	}
	return nil
}

// SplitWire inserts a new node with the given cell in the middle of the
// wire feeding child: the wire's parasitics are halved on each side and the
// new node is placed at the geometric midpoint. Used for repeater
// insertion on long routes. Returns the new node's ID.
func (t *Tree) SplitWire(child NodeID, c *cell.Cell) NodeID {
	ch := t.nodes[child]
	if ch.Parent == NoNode {
		panic("clocktree: cannot split the root's (nonexistent) wire")
	}
	p := t.nodes[ch.Parent]
	mid := &Node{
		ID:     NodeID(len(t.nodes)),
		Parent: p.ID,
		X:      (p.X + ch.X) / 2, Y: (p.Y + ch.Y) / 2,
		Cell:    c,
		WireRes: ch.WireRes / 2, WireCap: ch.WireCap / 2,
		Domain: ch.Domain,
	}
	t.nodes = append(t.nodes, mid)
	// Re-point the parent's child slot at the repeater.
	for i, cid := range p.Children {
		if cid == child {
			p.Children[i] = mid.ID
			break
		}
	}
	mid.Children = []NodeID{child}
	ch.Parent = mid.ID
	ch.WireRes /= 2
	ch.WireCap /= 2
	return mid.ID
}

// ReplaceWith makes t adopt o's node storage, keeping t's identity: every
// existing *Tree reference observes the new state. Used to commit an
// optimization performed on a Clone atomically — either the whole
// optimized tree lands, or (on error or panic) t is untouched.
func (t *Tree) ReplaceWith(o *Tree) { t.nodes = o.nodes }

// Clone deep-copies the tree (nodes, children slices, ADB settings). Cell
// pointers are shared: cells are immutable library entries.
func (t *Tree) Clone() *Tree {
	nt := &Tree{nodes: make([]*Node, len(t.nodes))}
	for i, n := range t.nodes {
		cp := *n
		cp.Children = append([]NodeID(nil), n.Children...)
		if n.AdjustSteps != nil {
			cp.AdjustSteps = make(map[string]int, len(n.AdjustSteps))
			for k, v := range n.AdjustSteps {
				cp.AdjustSteps[k] = v
			}
		}
		nt.nodes[i] = &cp
	}
	return nt
}
