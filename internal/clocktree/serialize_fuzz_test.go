package clocktree

import (
	"bytes"
	"strings"
	"testing"

	"wavemin/internal/cell"
)

// FuzzReadJSON checks the tree deserializer never panics and that accepted
// trees are valid and re-serializable.
func FuzzReadJSON(f *testing.F) {
	lib := cell.DefaultLibrary()
	tr := New(lib.MustByName("BUF_X16"), 0, 0)
	leaf := tr.AddChild(tr.Root(), lib.MustByName("BUF_X8"), 10, 10, 0.1, 5)
	tr.SetSinkCap(leaf, 8)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`)
	f.Add(`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":0,"cell":"BUF_X8"}]}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, src string) {
		got, err := ReadJSON(strings.NewReader(src), lib)
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted an invalid tree: %v", err)
		}
		var out bytes.Buffer
		if err := got.WriteJSON(&out); err != nil {
			t.Fatalf("accepted tree failed to serialize: %v", err)
		}
		// Timing must not panic either.
		_ = got.ComputeTiming(NominalMode)
	})
}
