package clocktree

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	tr, lib := buildBalanced(t)
	tr.SetCell(tr.Leaves()[0], lib.MustByName("INV_X4"))
	tr.SetCell(tr.Leaves()[1], lib.MustByName("ADB_X8"))
	tr.SetAdjustSteps(tr.Leaves()[1], "M2", 3)
	var buf bytes.Buffer
	if err := tr.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"test\"", "shape=box", "shape=invtriangle", "shape=diamond",
		"n0 -> n1", "steps map[M2:3]", "}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// One node line per tree node.
	if got := strings.Count(out, "[label="); got < tr.Len() {
		t.Fatalf("only %d labeled nodes for %d", got, tr.Len())
	}
}
