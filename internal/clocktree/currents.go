package clocktree

import (
	"wavemin/internal/cell"
	"wavemin/internal/waveform"
)

// NodeCurrents returns the IDD and ISS waveforms drawn by one node when
// the clock source launches edge e at t = 0, in absolute time: the cell's
// characterized pulses shifted to the node's input arrival time, with the
// edge flipped once per inverting ancestor.
func (t *Tree) NodeCurrents(tm *Timing, id NodeID, e cell.Edge) (idd, iss waveform.Waveform) {
	nd := t.nodes[id]
	edgeIn := t.EdgeAtInput(id, e)
	vdd := tm.Mode.VDDOf(nd.Domain)
	idd, iss = nd.Cell.Currents(edgeIn, tm.Load[id], vdd, tm.SlewIn[id])
	if s := nd.currentScale(); s != 1 {
		idd, iss = idd.Scale(s), iss.Scale(s)
	}
	return idd.Shift(tm.ATIn[id]), iss.Shift(tm.ATIn[id])
}

// SumCurrents accumulates the IDD and ISS waveforms of the given nodes for
// source edge e.
func (t *Tree) SumCurrents(tm *Timing, ids []NodeID, e cell.Edge) (idd, iss waveform.Waveform) {
	idds := make([]waveform.Waveform, 0, len(ids))
	isss := make([]waveform.Waveform, 0, len(ids))
	for _, id := range ids {
		i1, i2 := t.NodeCurrents(tm, id, e)
		idds = append(idds, i1)
		isss = append(isss, i2)
	}
	return waveform.Sum(idds...), waveform.Sum(isss...)
}

// TreeCurrents accumulates IDD/ISS over every node — the "blue solid
// curve" of the paper's Fig. 2 (all clock nodes).
func (t *Tree) TreeCurrents(tm *Timing, e cell.Edge) (idd, iss waveform.Waveform) {
	ids := make([]NodeID, len(t.nodes))
	for i := range t.nodes {
		ids[i] = NodeID(i)
	}
	return t.SumCurrents(tm, ids, e)
}

// LeafCurrents accumulates IDD/ISS over leaves only — the "dark dotted
// curve" of Fig. 2.
func (t *Tree) LeafCurrents(tm *Timing, e cell.Edge) (idd, iss waveform.Waveform) {
	return t.SumCurrents(tm, t.Leaves(), e)
}

// NonLeafCurrents accumulates IDD/ISS over internal nodes only — the
// waveform Observation 1 says polarity assignment must account for.
func (t *Tree) NonLeafCurrents(tm *Timing, e cell.Edge) (idd, iss waveform.Waveform) {
	return t.SumCurrents(tm, t.NonLeaves(), e)
}

// PeakCurrent returns the worst peak over both rails and both source
// edges for the whole tree — the golden scalar the experiments report as
// "peak current" (µA).
func (t *Tree) PeakCurrent(tm *Timing) float64 {
	var worst float64
	for _, e := range []cell.Edge{cell.Rising, cell.Falling} {
		idd, iss := t.TreeCurrents(tm, e)
		if p, _ := idd.Peak(); p > worst {
			worst = p
		}
		if p, _ := iss.Peak(); p > worst {
			worst = p
		}
	}
	return worst
}
