package clocktree

import (
	"math"
	"testing"

	"wavemin/internal/cell"
)

func TestSplitWire(t *testing.T) {
	lib := cell.DefaultLibrary()
	tr := New(lib.MustByName("BUF_X16"), 0, 0)
	leaf := tr.AddChild(tr.Root(), lib.MustByName("BUF_X4"), 100, 0, 0.4, 40)
	tr.SetSinkCap(leaf, 8)

	mid := tr.SplitWire(leaf, lib.MustByName("BUF_X8"))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	m := tr.Node(mid)
	l := tr.Node(leaf)
	if m.Parent != tr.Root() || l.Parent != mid {
		t.Fatal("split re-parenting wrong")
	}
	if m.WireRes != 0.2 || m.WireCap != 20 || l.WireRes != 0.2 || l.WireCap != 20 {
		t.Fatalf("parasitics not halved: mid %g/%g leaf %g/%g", m.WireRes, m.WireCap, l.WireRes, l.WireCap)
	}
	if m.X != 50 || m.Y != 0 {
		t.Fatalf("midpoint placement wrong: (%g,%g)", m.X, m.Y)
	}
	// Timing must traverse through the repeater: the leaf is now later.
	tm := tr.ComputeTiming(NominalMode)
	if tm.ATIn[leaf] <= tm.ATOut[mid]-1e-9 {
		t.Fatal("leaf arrival must follow repeater output")
	}
	// Leaf count unchanged.
	if len(tr.Leaves()) != 1 {
		t.Fatalf("leaves = %d, want 1", len(tr.Leaves()))
	}
}

func TestSplitWireKeepsPolarityWithInvertingRepeater(t *testing.T) {
	lib := cell.DefaultLibrary()
	tr := New(lib.MustByName("BUF_X16"), 0, 0)
	leaf := tr.AddChild(tr.Root(), lib.MustByName("BUF_X4"), 100, 0, 0.4, 40)
	tr.SetSinkCap(leaf, 8)
	tr.SplitWire(leaf, lib.MustByName("INV_X8"))
	if tr.PolarityOf(leaf) {
		t.Fatal("inverting repeater must flip downstream polarity")
	}
}

func TestSplitWireRootPanics(t *testing.T) {
	lib := cell.DefaultLibrary()
	tr := New(lib.MustByName("BUF_X16"), 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.SplitWire(tr.Root(), lib.MustByName("BUF_X8"))
}

func TestSplitWirePreservesTotalWireDelayApproximately(t *testing.T) {
	// Splitting with a repeater changes delay (adds a cell) but the total
	// wire RC must be conserved.
	lib := cell.DefaultLibrary()
	tr := New(lib.MustByName("BUF_X16"), 0, 0)
	leaf := tr.AddChild(tr.Root(), lib.MustByName("BUF_X4"), 200, 0, 0.8, 80)
	tr.SetSinkCap(leaf, 8)
	totalR := tr.Node(leaf).WireRes
	totalC := tr.Node(leaf).WireCap
	mid := tr.SplitWire(leaf, lib.MustByName("BUF_X8"))
	gotR := tr.Node(leaf).WireRes + tr.Node(mid).WireRes
	gotC := tr.Node(leaf).WireCap + tr.Node(mid).WireCap
	if math.Abs(gotR-totalR) > 1e-12 || math.Abs(gotC-totalC) > 1e-12 {
		t.Fatalf("wire RC not conserved: %g/%g vs %g/%g", gotR, gotC, totalR, totalC)
	}
}
