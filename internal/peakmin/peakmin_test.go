package peakmin

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randLayers(rng *rand.Rand, layers, width int) [][]Option {
	out := make([][]Option, layers)
	for i := range out {
		l := make([]Option, width)
		hasBuf, hasInv := false, false
		for j := range l {
			l[j] = Option{Peak: 10 + rng.Float64()*200, IsBuffer: rng.Intn(2) == 0, Tag: j}
			if l[j].IsBuffer {
				hasBuf = true
			} else {
				hasInv = true
			}
		}
		// Guarantee both polarities available (mirrors real libraries).
		if !hasBuf {
			l[0].IsBuffer = true
		}
		if !hasInv {
			l[width-1].IsBuffer = false
		}
		out[i] = l
	}
	return out
}

func TestTwoSinksBalance(t *testing.T) {
	// Two sinks, each can be a 100 µA buffer or a 100 µA inverter. The
	// optimum splits them: max(100,100)=100 vs max(200,0)=200.
	layers := [][]Option{
		{{Peak: 100, IsBuffer: true, Tag: 0}, {Peak: 100, IsBuffer: false, Tag: 1}},
		{{Peak: 100, IsBuffer: true, Tag: 0}, {Peak: 100, IsBuffer: false, Tag: 1}},
	}
	sol, err := Solve(context.Background(), layers, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Max-100) > 1e-9 {
		t.Fatalf("max = %g, want 100 (picks %v)", sol.Max, sol.Picks)
	}
	if layers[0][sol.Picks[0]].IsBuffer == layers[1][sol.Picks[1]].IsBuffer {
		t.Fatal("optimum must mix polarities")
	}
}

func TestSizingPreferred(t *testing.T) {
	// One sink: a small buffer (50) beats a big buffer (100) and a big
	// inverter (80).
	layers := [][]Option{{
		{Peak: 100, IsBuffer: true, Tag: 0},
		{Peak: 50, IsBuffer: true, Tag: 1},
		{Peak: 80, IsBuffer: false, Tag: 2},
	}}
	sol, err := Solve(context.Background(), layers, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Picks[0] != 1 {
		t.Fatalf("picked %d, want the 50 µA buffer", sol.Picks[0])
	}
}

func TestMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		layers := randLayers(rng, 2+rng.Intn(5), 2+rng.Intn(4))
		want, err := SolveExhaustive(layers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(context.Background(), layers, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		// Fine discretization: within 1 % of the true optimum.
		if got.Max > want.Max*1.01+1e-9 || got.Max < want.Max-1e-9 {
			t.Fatalf("trial %d: DP %g vs exhaustive %g", trial, got.Max, want.Max)
		}
	}
}

func TestSolutionConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	layers := randLayers(rng, 6, 4)
	sol, err := Solve(context.Background(), layers, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf, inv float64
	for li, pi := range sol.Picks {
		o := layers[li][pi]
		if o.IsBuffer {
			buf += o.Peak
		} else {
			inv += o.Peak
		}
	}
	if math.Abs(buf-sol.BufSum) > 1e-9 || math.Abs(inv-sol.InvSum) > 1e-9 {
		t.Fatalf("reported sums inconsistent with picks: %g/%g vs %g/%g", sol.BufSum, sol.InvSum, buf, inv)
	}
	if sol.Max != math.Max(buf, inv) {
		t.Fatal("Max inconsistent")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Solve(context.Background(), nil, 1); err == nil {
		t.Error("nil layers should error")
	}
	if _, err := Solve(context.Background(), [][]Option{{}}, 1); err == nil {
		t.Error("empty layer should error")
	}
	if _, err := Solve(context.Background(), [][]Option{{{Peak: math.NaN(), IsBuffer: true}}}, 1); err == nil {
		t.Error("NaN peak should error")
	}
	if _, err := SolveExhaustive(nil); err == nil {
		t.Error("exhaustive nil should error")
	}
	big := randLayers(rand.New(rand.NewSource(1)), 12, 6)
	if _, err := SolveExhaustive(big); err == nil {
		t.Error("exhaustive should refuse huge instances")
	}
}

func TestAllInvertersLayer(t *testing.T) {
	// Degenerate but legal: a layer offering only inverters.
	layers := [][]Option{
		{{Peak: 60, IsBuffer: false, Tag: 0}, {Peak: 40, IsBuffer: false, Tag: 1}},
	}
	sol, err := Solve(context.Background(), layers, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Picks[0] != 1 || sol.Max != 40 {
		t.Fatalf("sol %+v", sol)
	}
}

// Property: DP optimum never exceeds any single fixed assignment.
func TestPropertyUpperBoundedByAnyAssignment(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := randLayers(rng, 2+rng.Intn(4), 2+rng.Intn(3))
		sol, err := Solve(context.Background(), layers, 0.05)
		if err != nil {
			return false
		}
		// Compare against 5 random assignments.
		for k := 0; k < 5; k++ {
			var buf, inv float64
			for _, l := range layers {
				o := l[rng.Intn(len(l))]
				if o.IsBuffer {
					buf += o.Peak
				} else {
					inv += o.Peak
				}
			}
			if sol.Max > math.Max(buf, inv)*1.01+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
