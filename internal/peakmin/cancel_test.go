package peakmin

import (
	"context"
	"errors"
	"testing"
	"time"
)

func cancelLayers() [][]Option {
	return [][]Option{
		{{Peak: 100, IsBuffer: true, Tag: 0}, {Peak: 100, IsBuffer: false, Tag: 1}},
		{{Peak: 100, IsBuffer: true, Tag: 0}, {Peak: 100, IsBuffer: false, Tag: 1}},
	}
}

func TestSolveCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, cancelLayers(), 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := Solve(ctx, cancelLayers(), 0.5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
