// Package peakmin implements the comparison baseline ClkPeakMin (Jang,
// Joo & Kim, TCAD 2011 — the paper's reference [27]): buffer sizing and
// polarity assignment minimizing the coarse two-corner objective
//
//	max( Σ_{buffers} peak(φ(e_i)),  Σ_{inverters} peak(φ(e_i)) )
//
// i.e. all buffers are assumed to spike together at the rising clock edge
// and all inverters together at the falling edge, with no time structure.
// This is exactly the objective whose unawareness of arrival-time
// differences and non-leaf currents WaveMin fixes.
//
// Per [27] the problem is solved optimally in pseudo-polynomial time by a
// knapsack-style dynamic program over the discretized buffer-side sum.
package peakmin

import (
	"context"
	"fmt"
	"math"

	"wavemin/internal/faultinject"
	"wavemin/internal/obs"
)

// Option is one feasible (sink, cell) assignment.
type Option struct {
	Peak     float64 // the cell's peak supply current over [0,∞), µA
	IsBuffer bool    // true: counts into the buffer-side sum
	Tag      int     // opaque caller identifier
}

// Solution is one pick per layer (sink).
type Solution struct {
	Picks  []int
	BufSum float64
	InvSum float64
	Max    float64 // max(BufSum, InvSum) — the PeakMin objective
}

// Solve runs the knapsack DP. unit is the discretization step for the
// buffer-side sum (µA); 0 picks ~1/2000 of the maximum possible sum. The
// result is optimal up to the discretization. Cancellation is checked at
// every layer of the DP.
func Solve(ctx context.Context, layers [][]Option, unit float64) (Solution, error) {
	if len(layers) == 0 {
		return Solution{}, fmt.Errorf("peakmin: no layers")
	}
	var maxBufSum float64
	for i, l := range layers {
		if len(l) == 0 {
			return Solution{}, fmt.Errorf("peakmin: layer %d empty (infeasible)", i)
		}
		layerMax := 0.0
		for _, o := range l {
			if o.Peak < 0 || math.IsNaN(o.Peak) || math.IsInf(o.Peak, 0) {
				return Solution{}, fmt.Errorf("peakmin: layer %d bad peak %g", i, o.Peak)
			}
			if o.IsBuffer && o.Peak > layerMax {
				layerMax = o.Peak
			}
		}
		maxBufSum += layerMax
	}
	if unit <= 0 {
		unit = maxBufSum / 2000
		if unit <= 0 {
			unit = 1
		}
	}
	states := int(maxBufSum/unit) + 2
	if sp := obs.FromContext(ctx); sp != nil {
		var opts int64
		for _, l := range layers {
			opts += int64(len(l))
		}
		sp.Count("peakmin.options", opts)
		sp.Count("peakmin.dp_states", int64(states)*int64(len(layers)))
	}

	const inf = math.MaxFloat64
	type pred struct {
		prevB int32
		opt   int16
	}
	// dp[b] = minimal inverter-side sum with buffer-side (discretized) sum
	// exactly b; preds reconstructs the choice path.
	dp := make([]float64, states)
	next := make([]float64, states)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	faultinject.At(faultinject.SitePeakminSolve)
	preds := make([][]pred, len(layers))
	for li, l := range layers {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		for i := range next {
			next[i] = inf
		}
		pr := make([]pred, states)
		for i := range pr {
			pr[i] = pred{prevB: -1, opt: -1}
		}
		for pb, inv := range dp {
			if inv == inf {
				continue
			}
			for oi, o := range l {
				nb, ninv := pb, inv
				if o.IsBuffer {
					nb = pb + int(o.Peak/unit+0.5)
					if nb >= states {
						nb = states - 1
					}
				} else {
					ninv = inv + o.Peak
				}
				if ninv < next[nb] {
					next[nb] = ninv
					pr[nb] = pred{prevB: int32(pb), opt: int16(oi)}
				}
			}
		}
		dp, next = next, dp
		preds[li] = pr
	}

	bestB, bestVal := -1, inf
	for b, inv := range dp {
		if inv == inf {
			continue
		}
		if v := math.Max(float64(b)*unit, inv); v < bestVal {
			bestB, bestVal = b, v
		}
	}
	if bestB < 0 {
		return Solution{}, fmt.Errorf("peakmin: no feasible state")
	}

	picks := make([]int, len(layers))
	for li, b := len(layers)-1, bestB; li >= 0; li-- {
		p := preds[li][b]
		if p.opt < 0 {
			return Solution{}, fmt.Errorf("peakmin: reconstruction failed at layer %d", li)
		}
		picks[li] = int(p.opt)
		b = int(p.prevB)
	}

	// Exact sums from the reconstructed picks.
	var bufSum, invSum float64
	for li, pi := range picks {
		o := layers[li][pi]
		if o.IsBuffer {
			bufSum += o.Peak
		} else {
			invSum += o.Peak
		}
	}
	return Solution{Picks: picks, BufSum: bufSum, InvSum: invSum, Max: math.Max(bufSum, invSum)}, nil
}

// SolveExhaustive is the brute-force oracle for tests.
func SolveExhaustive(layers [][]Option) (Solution, error) {
	if len(layers) == 0 {
		return Solution{}, fmt.Errorf("peakmin: no layers")
	}
	paths := 1
	for i, l := range layers {
		if len(l) == 0 {
			return Solution{}, fmt.Errorf("peakmin: layer %d empty", i)
		}
		paths *= len(l)
		if paths > 200_000 {
			return Solution{}, fmt.Errorf("peakmin: exhaustive refused")
		}
	}
	best := Solution{Max: math.Inf(1)}
	picks := make([]int, len(layers))
	var rec func(li int, bufSum, invSum float64)
	rec = func(li int, bufSum, invSum float64) {
		if li == len(layers) {
			if v := math.Max(bufSum, invSum); v < best.Max {
				best = Solution{Picks: append([]int(nil), picks...), BufSum: bufSum, InvSum: invSum, Max: v}
			}
			return
		}
		for oi, o := range layers[li] {
			picks[li] = oi
			if o.IsBuffer {
				rec(li+1, bufSum+o.Peak, invSum)
			} else {
				rec(li+1, bufSum, invSum+o.Peak)
			}
		}
	}
	rec(0, 0, 0)
	return best, nil
}
