// Package canon holds the canonical-encoding primitives shared by every
// content hash in the system: the whole-design CacheKey at the facade and
// the per-zone solution keys in internal/zonecache. Both must agree on how
// sections are framed and how floats render, so the primitives live here
// rather than being duplicated per key format.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"strconv"
)

// Hasher accumulates length-prefixed sections into a SHA-256 content hash.
// The framing ("label:len\nbody\n") means no concatenation of two encoded
// requests can collide with a single request's encoding, and a section
// boundary can never be forged from inside a body.
type Hasher struct {
	h hash.Hash
}

// NewHasher starts a content hash whose first section pins the format tag;
// bump the tag whenever any section's canonical form changes so entries
// written under an older encoding can never alias a new request.
func NewHasher(format string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Section("format", format)
	return h
}

// Section appends one length-prefixed labelled section.
func (h *Hasher) Section(label, body string) {
	fmt.Fprintf(h.h, "%s:%d\n%s\n", label, len(body), body)
}

// SectionBytes is Section for raw byte bodies (digest lists, packed
// integer streams) without a string conversion.
func (h *Hasher) SectionBytes(label string, body []byte) {
	fmt.Fprintf(h.h, "%s:%d\n", label, len(body))
	h.h.Write(body)
	h.h.Write([]byte{'\n'})
}

// Sum returns the accumulated hash as lowercase hex — the form
// internal/castore accepts as a key.
func (h *Hasher) Sum() string {
	return hex.EncodeToString(h.h.Sum(nil))
}

// Float is the one float rendering used in content keys: shortest form
// that round-trips float64 exactly, so equal values always render equally
// and distinct values never collide.
func Float(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// AppendFloat appends the raw IEEE-754 bits of v big-endian — the
// allocation-free float encoding for packed digest bodies. Bit patterns
// are compared, not values, so +0 and −0 differ; content keys treat that
// as a (harmless) conservative miss.
func AppendFloat(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendInt appends v as a big-endian 64-bit two's-complement integer.
func AppendInt(dst []byte, v int) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(int64(v)))
}
