package zonecache

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"wavemin/internal/rescache"
)

func sol(zone [2]int, picks []int, expanded, frontier int) *Solution {
	return &Solution{Zone: zone, Picks: picks, Peak: 1.5, Expanded: expanded, Frontier: frontier}
}

func TestSolutionRoundTrip(t *testing.T) {
	want := sol([2]int{3, -1}, []int{0, 2, 1}, 40, 7)
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

// TestDecodeFailsClosed: any blob that is not exactly a current-version
// solution must come back (nil, error) — a cache miss, never a bad replay.
func TestDecodeFailsClosed(t *testing.T) {
	skewed := sol([2]int{0, 0}, []int{1}, 1, 1).Encode()
	skewed = bytes.Replace(skewed, []byte(`"v":1`), []byte(`"v":2`), 1)
	for name, blob := range map[string][]byte{
		"empty":        nil,
		"garbage":      []byte("not json"),
		"wrongShape":   []byte(`[1,2,3]`),
		"versionSkew":  skewed,
		"negativePick": []byte(`{"v":1,"zone":[0,0],"picks":[-1]}`),
	} {
		if s, err := Decode(blob); err == nil || s != nil {
			t.Errorf("%s: Decode = (%v, %v), want fail-closed", name, s, err)
		}
	}
}

func TestEncodeStampsVersion(t *testing.T) {
	var m map[string]any
	if err := json.Unmarshal(sol([2]int{0, 0}, nil, 0, 0).Encode(), &m); err != nil {
		t.Fatal(err)
	}
	if m["v"] != float64(solutionVersion) {
		t.Fatalf("encoded version %v, want %d", m["v"], solutionVersion)
	}
}

func TestMemoryCache(t *testing.T) {
	c := New(1<<20, 16)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", []byte("v"))
	if got, ok := c.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Mem.Hits != 1 || st.Mem.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit 1 miss", st.Mem)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNilCacheSafe: a nil *Cache is a valid always-miss cache, so session
// code can thread it unconditionally.
func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if st := c.Stats(); st != (rescache.TieredStats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.Abort()
}

func TestDurableCacheSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "zones")
	key := "00ab45cdef012345" // castore keys must be >= 8 chars of lowercase hex
	c, err := Open(dir, 1<<20, 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key, []byte("payload"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, 1<<20, 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Get(key)
	if !ok || string(got) != "payload" {
		t.Fatalf("after reopen: Get = %q, %v", got, ok)
	}
	// The disk hit was promoted into the fresh memory tier.
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats %+v, want 1 disk hit", st)
	}
	c2.Abort()
}

func seedMap(t *testing.T, sols ...*Solution) map[string][]byte {
	t.Helper()
	m := make(map[string][]byte, len(sols))
	for i, s := range sols {
		m[string(rune('a'+i))] = s.Encode()
	}
	return m
}

func TestSessionSeedLookupUsed(t *testing.T) {
	s := NewSession(nil) // remote-worker shape: seeds only, no shared cache
	seeds := seedMap(t, sol([2]int{1, 1}, []int{0, 1}, 10, 3))
	seeds["bad"] = []byte("junk") // malformed seeds are dropped, not fatal
	s.Seed(seeds)

	if _, ok := s.Lookup("bad"); ok {
		t.Fatal("malformed seed was served")
	}
	got, ok := s.Lookup("a")
	if !ok || !reflect.DeepEqual(got.Picks, []int{0, 1}) {
		t.Fatalf("Lookup(a) = %+v, %v", got, ok)
	}
	fresh := sol([2]int{2, 2}, []int{4}, 20, 5)
	s.Store("f", fresh)

	used := s.Used()
	if len(used) != 2 {
		t.Fatalf("Used has %d entries, want 2 (replayed + stored): %v", len(used), used)
	}
	if _, ok := used["a"]; !ok {
		t.Fatal("replayed seed missing from Used")
	}
	if dec, err := Decode(used["f"]); err != nil || dec.Picks[0] != 4 {
		t.Fatalf("stored solution corrupt in Used: %+v, %v", dec, err)
	}
}

func TestSessionLookupPrefersSeedOverCache(t *testing.T) {
	c := New(1<<20, 16)
	c.Put("k", sol([2]int{0, 0}, []int{9}, 1, 1).Encode())
	s := NewSession(c)
	s.Seed(map[string][]byte{"k": sol([2]int{0, 0}, []int{5}, 1, 1).Encode()})
	got, ok := s.Lookup("k")
	if !ok || got.Picks[0] != 5 {
		t.Fatalf("Lookup = %+v, %v; want the seeded copy", got, ok)
	}
}

func TestSessionStoreWritesThrough(t *testing.T) {
	c := New(1<<20, 16)
	s := NewSession(c)
	s.Store("k", sol([2]int{0, 0}, []int{1}, 2, 2))
	if _, ok := c.Get("k"); !ok {
		t.Fatal("Store did not write through to the shared cache")
	}
	// A second session over the same cache replays it.
	if got, ok := NewSession(c).Lookup("k"); !ok || got.Picks[0] != 1 {
		t.Fatalf("second session Lookup = %+v, %v", got, ok)
	}
}

// TestSessionWarmHints: seeds index capacity hints by spatial zone, and
// the hint is the max over every seed for that zone — hints pre-size
// arenas, so under-reporting wastes speed while the max is always safe.
func TestSessionWarmHints(t *testing.T) {
	s := NewSession(nil)
	s.Seed(map[string][]byte{
		"a": sol([2]int{1, 2}, []int{0}, 10, 3).Encode(),
		"b": sol([2]int{1, 2}, []int{0}, 25, 2).Encode(),
		"c": sol([2]int{9, 9}, []int{0}, 7, 7).Encode(),
	})
	labels, frontier, ok := s.Warm([2]int{1, 2})
	if !ok || labels != 25 || frontier != 3 {
		t.Fatalf("Warm = %d, %d, %v; want max (25, 3)", labels, frontier, ok)
	}
	if _, _, ok := s.Warm([2]int{0, 0}); ok {
		t.Fatal("Warm hit for an unseeded zone")
	}
}

// TestNilSessionSafe: a nil *Session always misses and swallows writes,
// so non-ECO solver paths pay no branches.
func TestNilSessionSafe(t *testing.T) {
	var s *Session
	s.Seed(map[string][]byte{"k": nil})
	if _, ok := s.Lookup("k"); ok {
		t.Fatal("nil session hit")
	}
	s.Store("k", sol([2]int{0, 0}, nil, 0, 0))
	if _, _, ok := s.Warm([2]int{0, 0}); ok {
		t.Fatal("nil session warm hit")
	}
	if u := s.Used(); u != nil {
		t.Fatalf("nil session Used = %v", u)
	}
}
