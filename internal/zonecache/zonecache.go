// Package zonecache is the per-zone MOSP solution cache behind ECO mode.
//
// The whole-design result cache (Design.CacheKey → result bytes) can only
// replay a request that is byte-for-byte the same problem. Real clock-tree
// work arrives as deltas — one leaf resized, one zone nudged — and the
// paper's Observation 4 (per-leaf delay independence, additive noise)
// means a delta invalidates only the zones it touches. This package
// stores each (skew interval × placement zone) solver outcome under a
// canonical content key (internal/polarity computes the keys, versioned
// by KeyFormat), so an incremental re-optimization replays every
// unchanged zone and pays the solver only for the delta.
//
// Storage composes the existing tiers: an in-memory LRU
// (internal/rescache) optionally backed by the persistent
// content-addressed store (internal/castore), so zone solutions survive
// coordinator restarts and a recovered coordinator still answers a delta
// from disk. Replayed solutions are bitwise-safe by construction: the key
// covers every input the solver sees, and the solver itself is
// deterministic, so key equality implies the cold solve would have
// produced exactly the cached picks.
package zonecache

import (
	"encoding/json"
	"fmt"
	"sync"

	"wavemin/internal/castore"
	"wavemin/internal/rescache"
)

// KeyFormat versions the zone key encoding. Bump it whenever the
// canonical form of any section of the zone key changes, so entries
// written under an older encoding can never alias a new instance.
const KeyFormat = "wavemin-zonekey-v1"

// solutionVersion versions the stored value encoding independently of the
// key: a decode of a foreign or stale blob fails closed into a cache miss.
const solutionVersion = 1

// Solution is one (interval, zone) solver outcome: the per-leaf candidate
// picks in the zone's canonical leaf order, plus the solve-effort stats a
// warm start uses as capacity hints.
type Solution struct {
	V        int     `json:"v"`
	Zone     [2]int  `json:"zone"`     // spatial zone key (PartitionZones grid cell)
	Picks    []int   `json:"picks"`    // candidate index per leaf, canonical leaf order
	Peak     float64 `json:"peak"`     // the instance's peak estimate (merge tie-break input)
	Expanded int     `json:"expanded"` // labels expanded by the cold solve
	Frontier int     `json:"frontier"` // final Pareto frontier size
}

// Encode renders a solution as its stored bytes.
func (s *Solution) Encode() []byte {
	s.V = solutionVersion
	b, err := json.Marshal(s)
	if err != nil {
		// Solution has no unmarshalable fields; this cannot happen.
		panic(fmt.Sprintf("zonecache: encode: %v", err))
	}
	return b
}

// Decode parses stored bytes, failing closed (nil, error → cache miss) on
// any malformed or version-skewed blob.
func Decode(b []byte) (*Solution, error) {
	var s Solution
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("zonecache: decode: %w", err)
	}
	if s.V != solutionVersion {
		return nil, fmt.Errorf("zonecache: version %d, want %d", s.V, solutionVersion)
	}
	for _, p := range s.Picks {
		if p < 0 {
			return nil, fmt.Errorf("zonecache: negative pick %d", p)
		}
	}
	return &s, nil
}

// Cache is the shared zone-solution store: an in-memory LRU, optionally
// write-through to a durable castore so solutions survive restarts.
type Cache struct {
	tier *rescache.Tiered
	disk *castore.Store // nil when memory-only
}

// New builds a memory-only cache bounded by bytes and entry count.
func New(maxBytes int64, maxEntries int) *Cache {
	return &Cache{tier: rescache.NewTiered(rescache.New(maxBytes, maxEntries), nil)}
}

// Open builds a durable cache at dir (castore framing, CRC-checked,
// LRU-evicted at diskMaxBytes) fronted by a memory LRU.
func Open(dir string, memMaxBytes, diskMaxBytes int64, sync bool) (*Cache, error) {
	disk, err := castore.Open(dir, castore.Options{MaxBytes: diskMaxBytes, Sync: sync})
	if err != nil {
		return nil, err
	}
	return &Cache{
		tier: rescache.NewTiered(rescache.New(memMaxBytes, 0), disk),
		disk: disk,
	}, nil
}

// SetPeer attaches a fleet read-through tier: zone solutions not held
// locally are fetched from the key's owning coordinator. Peer errors
// degrade to misses (the zone is re-solved) and peer hits are promoted
// to memory only — the durable tier stays shard-pure.
func (c *Cache) SetPeer(p rescache.PeerTier) {
	if c != nil {
		c.tier.SetPeer(p)
	}
}

// Get returns the stored bytes for key, if present in any tier
// (memory, durable, or — when attached — the owning peer).
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	return c.tier.Get(key)
}

// GetLocal returns the stored bytes for key from this node's own tiers
// only — the lookup that answers a peer's read-through request.
func (c *Cache) GetLocal(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	return c.tier.GetLocal(key)
}

// LocalKeys snapshots the memory tier's resident zone keys — what a
// bucket handoff enumerates when draining to a new owner.
func (c *Cache) LocalKeys() []string {
	if c == nil {
		return nil
	}
	return c.tier.LocalKeys()
}

// PutLocal stores val in the memory tier only — the write a replica
// performs for a pushed copy it does not own, keeping its durable tier
// shard-pure.
func (c *Cache) PutLocal(key string, val []byte) {
	if c == nil {
		return
	}
	c.tier.PutLocal(key, val)
}

// Put stores val under key in both tiers.
func (c *Cache) Put(key string, val []byte) {
	if c == nil {
		return
	}
	c.tier.Put(key, val)
}

// Stats reports both tiers' counters.
func (c *Cache) Stats() rescache.TieredStats {
	if c == nil {
		return rescache.TieredStats{}
	}
	return c.tier.Stats()
}

// Close releases the durable tier, if any.
func (c *Cache) Close() error {
	if c == nil || c.disk == nil {
		return nil
	}
	return c.disk.Close()
}

// Abort abandons the durable tier without flushing — the crash-simulation
// path: disk is left exactly as a power failure would leave it.
func (c *Cache) Abort() {
	if c != nil && c.disk != nil {
		c.disk.Abort()
	}
}

// Session is one optimization run's view of the cache: it layers a seeded
// base-solution map (shipped with dispatched delta jobs, whose workers do
// not share the coordinator's cache) over the shared cache, records every
// solution the run touched so the job registry can chain deltas off it,
// and answers warm-start capacity hints for zones whose content changed.
//
// A nil *Session is valid and always misses, so solver code can thread it
// unconditionally. All methods are safe for concurrent use — the solver
// fan-out looks up and stores from its worker pool.
type Session struct {
	cache *Cache // may be nil (remote worker: seeds only)

	mu   sync.Mutex
	seed map[string]seedEntry // base solutions by zone key, decoded once
	used map[string][]byte    // every solution this run replayed or produced
	warm map[[2]int]warmHint
}

// seedEntry keeps a seed in both forms: the stored bytes (what Used
// re-exports) and the decoded solution (what Lookup returns). Decoding
// once at Seed time keeps the hot replay path allocation-free — a delta
// solve replays tens of thousands of seeds.
type seedEntry struct {
	raw []byte
	sol *Solution
}

type warmHint struct{ labels, frontier int }

// NewSession starts a run view over cache (which may be nil).
func NewSession(cache *Cache) *Session {
	return &Session{cache: cache, seed: map[string]seedEntry{}, used: map[string][]byte{}, warm: map[[2]int]warmHint{}}
}

// Seed loads base-run solutions (zone key → encoded Solution). Malformed
// entries are dropped: a seed is an optimization, never a correctness
// input. Seeded solutions also feed the warm-hint index by spatial zone.
func (s *Session) Seed(zones map[string][]byte) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, raw := range zones {
		sol, err := Decode(raw)
		if err != nil {
			continue
		}
		s.seed[key] = seedEntry{raw: append([]byte(nil), raw...), sol: sol}
		s.noteWarmLocked(sol)
	}
}

func (s *Session) noteWarmLocked(sol *Solution) {
	h := s.warm[sol.Zone]
	if sol.Expanded > h.labels {
		h.labels = sol.Expanded
	}
	if sol.Frontier > h.frontier {
		h.frontier = sol.Frontier
	}
	s.warm[sol.Zone] = h
}

// Lookup returns the solution stored under key, checking the seeded base
// map first and the shared cache second, and records the use. The
// returned Solution is shared between callers and must not be mutated —
// the replay path only reads it.
func (s *Session) Lookup(key string) (*Solution, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	if e, ok := s.seed[key]; ok {
		// Seed bytes are session-owned; record the reference, skip the
		// copy and the re-decode.
		s.used[key] = e.raw
		s.mu.Unlock()
		return e.sol, true
	}
	s.mu.Unlock()
	raw, ok := s.cache.Get(key)
	if !ok {
		return nil, false
	}
	sol, err := Decode(raw)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	s.used[key] = append([]byte(nil), raw...)
	s.mu.Unlock()
	return sol, true
}

// Store records a freshly solved instance and writes it through to the
// shared cache (when one is attached).
func (s *Session) Store(key string, sol *Solution) {
	if s == nil {
		return
	}
	raw := sol.Encode()
	s.mu.Lock()
	s.used[key] = raw
	s.mu.Unlock()
	s.cache.Put(key, raw)
}

// Warm returns capacity hints for a zone that must be re-solved: the
// largest label-expansion and frontier counts any base solution for the
// same spatial zone recorded. Hints are strictly output-neutral — they
// pre-size solver arenas, never change pruning — so a wrong or missing
// hint costs speed, not correctness.
func (s *Session) Warm(zone [2]int) (labels, frontier int, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.warm[zone]
	return h.labels, h.frontier, ok
}

// Used snapshots every solution this run touched, keyed by zone key — the
// map a job registry records and a dispatched delta job ships to workers.
func (s *Session) Used() map[string][]byte {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.used))
	for k, v := range s.used {
		out[k] = append([]byte(nil), v...)
	}
	return out
}
