package waveform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewSortsAndValidates(t *testing.T) {
	w, err := New([]Point{{T: 3, I: 1}, {T: 1, I: 2}, {T: 2, I: 3}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pts := w.Points()
	if pts[0].T != 1 || pts[1].T != 2 || pts[2].T != 3 {
		t.Fatalf("points not sorted: %v", pts)
	}
}

func TestNewRejectsDuplicateTimes(t *testing.T) {
	if _, err := New([]Point{{T: 1, I: 0}, {T: 1, I: 5}}); err == nil {
		t.Fatal("expected error for duplicate times")
	}
}

func TestNewRejectsNonFinite(t *testing.T) {
	cases := [][]Point{
		{{T: math.NaN(), I: 0}},
		{{T: 0, I: math.Inf(1)}},
		{{T: math.Inf(-1), I: 0}},
	}
	for i, pts := range cases {
		if _, err := New(pts); err == nil {
			t.Errorf("case %d: expected error for non-finite sample", i)
		}
	}
}

func TestZeroWaveform(t *testing.T) {
	var w Waveform
	if !w.IsZero() {
		t.Fatal("zero value should be zero waveform")
	}
	if w.At(5) != 0 {
		t.Fatal("zero waveform should evaluate to 0")
	}
	if p, _ := w.Peak(); p != 0 {
		t.Fatal("zero waveform peak should be 0")
	}
	if w.Charge() != 0 {
		t.Fatal("zero waveform charge should be 0")
	}
}

func TestAtInterpolatesLinearly(t *testing.T) {
	w := MustNew([]Point{{T: 0, I: 0}, {T: 10, I: 100}})
	for _, tc := range []struct{ t, want float64 }{
		{0, 0}, {5, 50}, {10, 100}, {2.5, 25},
	} {
		if got := w.At(tc.t); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("At(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestAtOutsideSpanIsZero(t *testing.T) {
	w := MustNew([]Point{{T: 1, I: 5}, {T: 2, I: 5}})
	if w.At(0.999) != 0 || w.At(2.001) != 0 {
		t.Fatal("waveform must be zero outside its span")
	}
	if w.At(1) != 5 || w.At(2) != 5 {
		t.Fatal("waveform must match samples at span edges")
	}
}

func TestAtExactBreakpoints(t *testing.T) {
	w := MustNew([]Point{{T: 0, I: 1}, {T: 1, I: 7}, {T: 2, I: 3}})
	if w.At(1) != 7 {
		t.Fatalf("At breakpoint: got %g want 7", w.At(1))
	}
}

func TestTriangleShape(t *testing.T) {
	w := Triangle(10, 2, 4, 100)
	if got := w.At(10); got != 0 {
		t.Errorf("At(start) = %g, want 0", got)
	}
	if got := w.At(12); got != 100 {
		t.Errorf("At(peak) = %g, want 100", got)
	}
	if got := w.At(16); got != 0 {
		t.Errorf("At(end) = %g, want 0", got)
	}
	if got := w.At(11); !almostEq(got, 50, 1e-12) {
		t.Errorf("At(mid-rise) = %g, want 50", got)
	}
	if got := w.At(14); !almostEq(got, 50, 1e-12) {
		t.Errorf("At(mid-fall) = %g, want 50", got)
	}
	// Area of a triangle: base*height/2.
	if q := w.Charge(); !almostEq(q, 6*100/2, 1e-9) {
		t.Errorf("Charge = %g, want 300", q)
	}
}

func TestTrianglePanicsOnBadEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Triangle(0, 0, 1, 1)
}

func TestShift(t *testing.T) {
	w := Triangle(0, 1, 1, 10)
	s := w.Shift(5)
	if got := s.At(6); got != 10 {
		t.Fatalf("shifted peak: got %g want 10", got)
	}
	if got, want := s.Charge(), w.Charge(); !almostEq(got, want, 1e-12) {
		t.Fatalf("shift changed charge: %g vs %g", got, want)
	}
	if w.At(1) != 10 {
		t.Fatal("Shift must not mutate receiver")
	}
}

func TestScale(t *testing.T) {
	w := Triangle(0, 1, 1, 10)
	s := w.Scale(2.5)
	if p, _ := s.Peak(); !almostEq(p, 25, 1e-12) {
		t.Fatalf("scaled peak: got %g want 25", p)
	}
	if p, _ := w.Peak(); p != 10 {
		t.Fatal("Scale must not mutate receiver")
	}
}

func TestAddExactOnPWL(t *testing.T) {
	a := Triangle(0, 1, 1, 10)
	b := Triangle(1, 1, 1, 10)
	sum := Add(a, b)
	// At t=1: a is at its end (0+... a spans [0,2] peak at 1 => a(1)=10),
	// b starts at 1 => b(1)=0.
	if got := sum.At(1); !almostEq(got, 10, 1e-12) {
		t.Errorf("sum.At(1) = %g, want 10", got)
	}
	// t=1.5: a(1.5)=5, b(1.5)=5.
	if got := sum.At(1.5); !almostEq(got, 10, 1e-12) {
		t.Errorf("sum.At(1.5) = %g, want 10", got)
	}
	if got, want := sum.Charge(), a.Charge()+b.Charge(); !almostEq(got, want, 1e-9) {
		t.Errorf("sum charge %g, want %g", got, want)
	}
}

func TestAddWithZero(t *testing.T) {
	a := Triangle(0, 1, 1, 10)
	if got := Add(a, Waveform{}); !Equal(got, a, 0) {
		t.Fatal("a+0 should equal a")
	}
	if got := Add(Waveform{}, a); !Equal(got, a, 0) {
		t.Fatal("0+a should equal a")
	}
}

func TestSumMatchesPairwiseAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := make([]Waveform, 6)
	for i := range ws {
		ws[i] = Triangle(rng.Float64()*10, 0.5+rng.Float64(), 0.5+rng.Float64(), rng.Float64()*100)
	}
	sum := Sum(ws...)
	var pair Waveform
	for _, w := range ws {
		pair = Add(pair, w)
	}
	if !Equal(sum, pair, 1e-9) {
		t.Fatal("Sum disagrees with pairwise Add")
	}
}

func TestPeakAndPeakIn(t *testing.T) {
	w := Sum(Triangle(0, 1, 1, 10), Triangle(3, 1, 1, 20))
	p, at := w.Peak()
	if !almostEq(p, 20, 1e-12) || !almostEq(at, 4, 1e-12) {
		t.Fatalf("Peak = (%g,%g), want (20,4)", p, at)
	}
	p, at = w.PeakIn(0, 2)
	if !almostEq(p, 10, 1e-12) || !almostEq(at, 1, 1e-12) {
		t.Fatalf("PeakIn(0,2) = (%g,%g), want (10,1)", p, at)
	}
	// Window edge is a candidate even if not a breakpoint.
	p, _ = w.PeakIn(3.5, 3.7)
	if !almostEq(p, w.At(3.7), 1e-12) {
		t.Fatalf("PeakIn edge: got %g want %g", p, w.At(3.7))
	}
}

func TestClip(t *testing.T) {
	w := Triangle(0, 2, 2, 10)
	c := w.Clip(1, 3)
	if got := c.At(1); !almostEq(got, 5, 1e-12) {
		t.Errorf("clip left edge: %g want 5", got)
	}
	if got := c.At(2); !almostEq(got, 10, 1e-12) {
		t.Errorf("clip inner: %g want 10", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("clip must zero outside: %g", got)
	}
	if !w.Clip(3, 1).IsZero() {
		t.Error("inverted clip window should be zero waveform")
	}
}

func TestResample(t *testing.T) {
	w := Triangle(0, 1, 1, 10)
	r := w.Resample([]float64{0, 0.5, 1, 1.5, 2, 1}) // includes dup, unsorted
	if r.Len() != 5 {
		t.Fatalf("resample kept %d pts, want 5", r.Len())
	}
	if got := r.At(0.5); !almostEq(got, 5, 1e-12) {
		t.Fatalf("resample value: %g want 5", got)
	}
}

func TestSampleUniform(t *testing.T) {
	w := Triangle(0, 1, 1, 10)
	pts := w.SampleUniform(0, 2, 5)
	if len(pts) != 5 {
		t.Fatalf("got %d pts", len(pts))
	}
	if pts[0].T != 0 || pts[4].T != 2 {
		t.Fatal("sample ends wrong")
	}
	if !almostEq(pts[2].I, 10, 1e-12) {
		t.Fatalf("midpoint: %g want 10", pts[2].I)
	}
}

func TestEqualTolerance(t *testing.T) {
	a := Triangle(0, 1, 1, 10)
	b := Triangle(0, 1, 1, 10.5)
	if Equal(a, b, 0.1) {
		t.Fatal("waveforms differing by 0.5 equal at tol 0.1")
	}
	if !Equal(a, b, 0.6) {
		t.Fatal("waveforms differing by 0.5 not equal at tol 0.6")
	}
}

func TestStringSummaries(t *testing.T) {
	var z Waveform
	if z.String() != "waveform{zero}" {
		t.Errorf("zero String: %q", z.String())
	}
	w := Triangle(0, 1, 1, 10)
	if w.String() == "" || w.Table() == "" {
		t.Error("empty String/Table")
	}
}

// Property: Add is commutative and associative (within fp tolerance).
func TestPropertyAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Triangle(rng.Float64()*20, 0.1+rng.Float64(), 0.1+rng.Float64(), rng.Float64()*50)
		b := Triangle(rng.Float64()*20, 0.1+rng.Float64(), 0.1+rng.Float64(), rng.Float64()*50)
		return Equal(Add(a, b), Add(b, a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Shift preserves peak value and charge; At commutes with Shift.
func TestPropertyShiftInvariants(t *testing.T) {
	f := func(seed int64, rawDt float64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := math.Mod(rawDt, 1e6)
		if math.IsNaN(dt) || math.IsInf(dt, 0) {
			dt = 1
		}
		w := Triangle(rng.Float64()*20, 0.1+rng.Float64(), 0.1+rng.Float64(), rng.Float64()*50)
		s := w.Shift(dt)
		p0, a0 := w.Peak()
		p1, a1 := s.Peak()
		if !almostEq(p0, p1, 1e-9) {
			return false
		}
		if !almostEq(a0+dt, a1, 1e-6) {
			return false
		}
		return almostEq(w.Charge(), s.Charge(), 1e-6*math.Max(1, math.Abs(w.Charge())))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Charge is additive under Add.
func TestPropertyChargeAdditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Triangle(rng.Float64()*20, 0.1+rng.Float64(), 0.1+rng.Float64(), rng.Float64()*50)
		b := Triangle(rng.Float64()*20, 0.1+rng.Float64(), 0.1+rng.Float64(), rng.Float64()*50)
		got := Add(a, b).Charge()
		want := a.Charge() + b.Charge()
		return almostEq(got, want, 1e-6*math.Max(1, math.Abs(want)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: peak of sum ≤ sum of peaks (superposition bound the polarity
// assignment exploits).
func TestPropertyPeakSubadditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Triangle(rng.Float64()*20, 0.1+rng.Float64(), 0.1+rng.Float64(), rng.Float64()*50)
		b := Triangle(rng.Float64()*20, 0.1+rng.Float64(), 0.1+rng.Float64(), rng.Float64()*50)
		pa, _ := a.Peak()
		pb, _ := b.Peak()
		ps, _ := Add(a, b).Peak()
		return ps <= pa+pb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
