package waveform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSampleSetValidates(t *testing.T) {
	if _, err := NewSampleSet(nil); err == nil {
		t.Fatal("empty sample set should be rejected")
	}
	if _, err := NewSampleSet([]float64{1, 1}); err == nil {
		t.Fatal("duplicate sampling points should be rejected")
	}
	s, err := NewSampleSet([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Times[0] != 1 || s.Times[2] != 3 {
		t.Fatal("sample set not sorted")
	}
}

func TestUniformSampleSet(t *testing.T) {
	s := UniformSampleSet(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i, w := range want {
		if s.Times[i] != w {
			t.Fatalf("Times[%d] = %g, want %g", i, s.Times[i], w)
		}
	}
	one := UniformSampleSet(0, 10, 1)
	if len(one.Times) != 1 || one.Times[0] != 5 {
		t.Fatalf("n=1 should give midpoint, got %v", one.Times)
	}
}

func TestVectorAndMaxAt(t *testing.T) {
	w := Triangle(0, 1, 1, 10)
	s := UniformSampleSet(0, 2, 5)
	v := s.Vector(w)
	want := []float64{0, 5, 10, 5, 0}
	for i := range want {
		if !almostEq(v[i], want[i], 1e-12) {
			t.Fatalf("Vector[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	peak, at := s.MaxAt(w)
	if !almostEq(peak, 10, 1e-12) || !almostEq(at, 1, 1e-12) {
		t.Fatalf("MaxAt = (%g,%g), want (10,1)", peak, at)
	}
}

func TestMaxAtUndersamplesPeak(t *testing.T) {
	// A sparse sample set can miss the true peak — exactly the inaccuracy
	// the paper attributes to 4-corner models. The sampled max must be a
	// lower bound on the true peak.
	w := Triangle(0, 0.1, 0.1, 100)
	s := UniformSampleSet(0, 2, 3) // samples at 0, 1, 2 — misses t=0.1
	peak, _ := s.MaxAt(w)
	truePeak, _ := w.Peak()
	if peak >= truePeak {
		t.Fatalf("expected undersampling: sampled %g, true %g", peak, truePeak)
	}
}

func TestHotSpotsPrefersLargeMagnitude(t *testing.T) {
	small := Triangle(10, 1, 1, 1)
	big := Triangle(0, 1, 1, 100)
	s := HotSpots(3, small, big)
	// The three retained breakpoints must include t=1 (the big peak).
	found := false
	for _, tm := range s.Times {
		if tm == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot spots %v should contain the big peak time 1", s.Times)
	}
}

func TestHotSpotsOnZero(t *testing.T) {
	s := HotSpots(4, Waveform{})
	if s.Size() != 1 {
		t.Fatalf("zero waveform hotspots: %v", s.Times)
	}
}

func TestHotSpotsSortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := make([]Waveform, 4)
		for i := range ws {
			ws[i] = Triangle(rng.Float64()*20, 0.1+rng.Float64(), 0.1+rng.Float64(), rng.Float64()*50)
		}
		s := HotSpots(1+rng.Intn(12), ws...)
		for i := 1; i < len(s.Times); i++ {
			if s.Times[i] <= s.Times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	a := SampleSet{Times: []float64{1, 3, 5}}
	b := SampleSet{Times: []float64{2, 3, 6}}
	u := Union(a, b)
	want := []float64{1, 2, 3, 5, 6}
	if len(u.Times) != len(want) {
		t.Fatalf("union %v, want %v", u.Times, want)
	}
	for i := range want {
		if u.Times[i] != want[i] {
			t.Fatalf("union %v, want %v", u.Times, want)
		}
	}
}

// Property: MaxAt over a union is >= MaxAt over each constituent set.
func TestPropertyUnionMaxMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Triangle(rng.Float64()*5, 0.1+rng.Float64(), 0.1+rng.Float64(), rng.Float64()*50)
		a := UniformSampleSet(0, 8, 1+rng.Intn(6))
		b := UniformSampleSet(rng.Float64(), 8+rng.Float64(), 1+rng.Intn(6))
		u := Union(a, b)
		ma, _ := a.MaxAt(w)
		mb, _ := b.MaxAt(w)
		mu, _ := u.MaxAt(w)
		return mu >= ma-1e-12 && mu >= mb-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
