package waveform

import (
	"fmt"
	"sort"
)

// SampleSet is the ordered set S of time sampling points at which the
// accumulated noise waveform is evaluated (paper §III, §IV-B). The points
// are relative to the clock edge arriving at the zone under optimization;
// the polarity optimizer evaluates every candidate assignment's waveform at
// exactly these instants, so |S| is the arc-weight dimension r of the MOSP
// formulation.
type SampleSet struct {
	Times []float64 // strictly increasing, ps
}

// NewSampleSet validates and wraps a sampling grid.
func NewSampleSet(times []float64) (SampleSet, error) {
	ts := append([]float64(nil), times...)
	sort.Float64s(ts)
	for i := 1; i < len(ts); i++ {
		if ts[i] == ts[i-1] {
			return SampleSet{}, fmt.Errorf("waveform: duplicate sampling point %g", ts[i])
		}
	}
	if len(ts) == 0 {
		return SampleSet{}, fmt.Errorf("waveform: empty sample set")
	}
	return SampleSet{Times: ts}, nil
}

// UniformSampleSet spreads n points evenly over [t0, t1].
func UniformSampleSet(t0, t1 float64, n int) SampleSet {
	if n < 1 {
		panic("waveform: UniformSampleSet needs n >= 1")
	}
	if n == 1 {
		return SampleSet{Times: []float64{(t0 + t1) / 2}}
	}
	ts := make([]float64, n)
	step := (t1 - t0) / float64(n-1)
	for i := range ts {
		ts[i] = t0 + float64(i)*step
	}
	return SampleSet{Times: ts}
}

// Size returns |S|.
func (s SampleSet) Size() int { return len(s.Times) }

// Vector evaluates w at every sampling point, producing the noise vector
// used as an MOSP arc weight.
func (s SampleSet) Vector(w Waveform) []float64 {
	v := make([]float64, len(s.Times))
	for i, t := range s.Times {
		v[i] = w.At(t)
	}
	return v
}

// MaxAt returns the maximum of w over the sampling points and the arg-max
// time. This is the sampled estimate of the waveform peak — the quantity
// WaveMin minimizes.
func (s SampleSet) MaxAt(w Waveform) (peak, at float64) {
	if len(s.Times) == 0 {
		return 0, 0
	}
	at = s.Times[0]
	peak = w.At(at)
	for _, t := range s.Times[1:] {
		if v := w.At(t); v > peak {
			peak, at = v, t
		}
	}
	return peak, at
}

// HotSpots extracts up to n sampling points from the breakpoints of the
// given waveforms, preferring times where the summed magnitude is largest —
// the paper's "hot spot" capture (Fig. 7(b)): most samples of a supply
// current waveform are zero, and the informative points cluster near the
// clock edges. Duplicate times are collapsed. The result is sorted.
func HotSpots(n int, ws ...Waveform) SampleSet {
	if n < 1 {
		panic("waveform: HotSpots needs n >= 1")
	}
	sum := Sum(ws...)
	pts := sum.Points()
	if len(pts) == 0 {
		return SampleSet{Times: []float64{0}}
	}
	// Sort candidate breakpoints by magnitude, keep the n largest, then
	// restore time order.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].I != pts[j].I {
			return pts[i].I > pts[j].I
		}
		return pts[i].T < pts[j].T
	})
	if len(pts) > n {
		pts = pts[:n]
	}
	times := make([]float64, len(pts))
	for i, p := range pts {
		times[i] = p.T
	}
	sort.Float64s(times)
	// Collapse duplicates defensively (breakpoints are unique, but be safe).
	out := times[:0]
	for i, t := range times {
		if i == 0 || t != times[i-1] {
			out = append(out, t)
		}
	}
	return SampleSet{Times: out}
}

// Union merges two sample sets, dropping duplicates.
func Union(a, b SampleSet) SampleSet {
	ts := append(append([]float64(nil), a.Times...), b.Times...)
	sort.Float64s(ts)
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			out = append(out, t)
		}
	}
	return SampleSet{Times: out}
}
