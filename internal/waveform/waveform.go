// Package waveform provides piecewise-linear current waveforms and the
// sampling machinery used throughout the WaveMin flow.
//
// A Waveform is a piecewise-linear (PWL) function of time, the same
// representation circuit simulators use for transient sources and the
// representation the paper's characterization step produces (Fig. 7):
// a handful of (time, current) samples near the clock edges, linearly
// interpolated in between and zero outside the sampled span.
//
// Units follow the rest of the module: time in picoseconds (ps), current
// in microamperes (µA). Nothing in this package enforces the units; they
// are a convention shared with internal/cell and internal/spice.
package waveform

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is a single PWL sample.
type Point struct {
	T float64 // time, ps
	I float64 // current, µA
}

// Waveform is a piecewise-linear function of time. The zero value is the
// identically-zero waveform. Points are kept sorted by time with strictly
// increasing T. Outside [First, Last] the waveform evaluates to zero, so a
// waveform whose edge samples are nonzero has an implicit step there;
// constructors in this package always emit zero-valued end points to avoid
// that.
type Waveform struct {
	pts []Point
}

// New builds a waveform from the given samples. Samples are sorted by time.
// Duplicate times are rejected because they would make interpolation
// ambiguous.
func New(pts []Point) (Waveform, error) {
	cp := make([]Point, len(pts))
	copy(cp, pts)
	sort.Slice(cp, func(i, j int) bool { return cp[i].T < cp[j].T })
	for i := 1; i < len(cp); i++ {
		if cp[i].T == cp[i-1].T {
			return Waveform{}, fmt.Errorf("waveform: duplicate sample time %g", cp[i].T)
		}
	}
	for _, p := range cp {
		if math.IsNaN(p.T) || math.IsInf(p.T, 0) || math.IsNaN(p.I) || math.IsInf(p.I, 0) {
			return Waveform{}, errors.New("waveform: non-finite sample")
		}
	}
	return Waveform{pts: cp}, nil
}

// MustNew is New but panics on error; for literals in tests and tables.
func MustNew(pts []Point) Waveform {
	w, err := New(pts)
	if err != nil {
		panic(err)
	}
	return w
}

// Triangle returns an asymmetric triangular pulse that starts at t0, rises
// linearly to peak at t0+rise, and decays linearly to zero at t0+rise+fall.
// Triangular pulses are the behavioural stand-in for a CMOS stage's supply
// current spike: the area equals the delivered charge and the peak equals
// the paper's P+/P− characterization value.
func Triangle(t0, rise, fall, peak float64) Waveform {
	if rise <= 0 || fall <= 0 {
		panic(fmt.Sprintf("waveform: non-positive triangle edges rise=%g fall=%g", rise, fall))
	}
	return Waveform{pts: []Point{
		{T: t0, I: 0},
		{T: t0 + rise, I: peak},
		{T: t0 + rise + fall, I: 0},
	}}
}

// Points returns a copy of the waveform's samples.
func (w Waveform) Points() []Point {
	cp := make([]Point, len(w.pts))
	copy(cp, w.pts)
	return cp
}

// Len reports the number of PWL samples.
func (w Waveform) Len() int { return len(w.pts) }

// IsZero reports whether the waveform has no samples (identically zero).
func (w Waveform) IsZero() bool { return len(w.pts) == 0 }

// First returns the time of the first sample; zero waveforms return 0.
func (w Waveform) First() float64 {
	if len(w.pts) == 0 {
		return 0
	}
	return w.pts[0].T
}

// Last returns the time of the last sample; zero waveforms return 0.
func (w Waveform) Last() float64 {
	if len(w.pts) == 0 {
		return 0
	}
	return w.pts[len(w.pts)-1].T
}

// At evaluates the waveform at time t with linear interpolation. Times
// outside the sampled span evaluate to zero.
func (w Waveform) At(t float64) float64 {
	n := len(w.pts)
	if n == 0 || t < w.pts[0].T || t > w.pts[n-1].T {
		return 0
	}
	// Binary search for the segment containing t.
	k := sort.Search(n, func(i int) bool { return w.pts[i].T >= t })
	if k < n && w.pts[k].T == t {
		return w.pts[k].I
	}
	a, b := w.pts[k-1], w.pts[k]
	frac := (t - a.T) / (b.T - a.T)
	return a.I + frac*(b.I-a.I)
}

// Cursor evaluates a waveform at a nondecreasing sequence of times in
// amortized O(1) per query. It returns exactly the values At would —
// same boundary handling, same interpolation arithmetic — so replacing a
// loop of At calls with a Cursor is a bit-identical transformation as
// long as the query times never decrease.
type Cursor struct {
	pts []Point
	k   int // smallest index with pts[k].T >= the last queried time
}

// Cursor returns a cursor positioned before the first sample.
func (w Waveform) Cursor() Cursor { return Cursor{pts: w.pts} }

// At evaluates the waveform at t. Queries must be nondecreasing in t;
// earlier times silently evaluate as if clamped to the cursor position.
func (c *Cursor) At(t float64) float64 {
	n := len(c.pts)
	if n == 0 || t < c.pts[0].T || t > c.pts[n-1].T {
		return 0
	}
	for c.k < n && c.pts[c.k].T < t {
		c.k++
	}
	if c.k < n && c.pts[c.k].T == t {
		return c.pts[c.k].I
	}
	a, b := c.pts[c.k-1], c.pts[c.k]
	frac := (t - a.T) / (b.T - a.T)
	return a.I + frac*(b.I-a.I)
}

// Shift returns the waveform translated by dt along the time axis.
func (w Waveform) Shift(dt float64) Waveform {
	if len(w.pts) == 0 || dt == 0 {
		return w
	}
	pts := make([]Point, len(w.pts))
	for i, p := range w.pts {
		pts[i] = Point{T: p.T + dt, I: p.I}
	}
	return Waveform{pts: pts}
}

// Scale returns the waveform with every current multiplied by k.
func (w Waveform) Scale(k float64) Waveform {
	if len(w.pts) == 0 {
		return w
	}
	pts := make([]Point, len(w.pts))
	for i, p := range w.pts {
		pts[i] = Point{T: p.T, I: p.I * k}
	}
	return Waveform{pts: pts}
}

// Add superposes two waveforms. The result samples the union of both
// breakpoint sets, so it is exact for PWL inputs.
func Add(a, b Waveform) Waveform {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	times := mergeTimes(a.pts, b.pts)
	pts := make([]Point, len(times))
	for i, t := range times {
		pts[i] = Point{T: t, I: a.At(t) + b.At(t)}
	}
	return Waveform{pts: pts}
}

// Sum superposes any number of waveforms. Summing pairwise would be
// quadratic in breakpoints; Sum merges all breakpoint sets once.
func Sum(ws ...Waveform) Waveform {
	nonzero := ws[:0:0]
	for _, w := range ws {
		if !w.IsZero() {
			nonzero = append(nonzero, w)
		}
	}
	switch len(nonzero) {
	case 0:
		return Waveform{}
	case 1:
		return nonzero[0]
	}
	var all []Point
	for _, w := range nonzero {
		all = append(all, w.pts...)
	}
	times := mergeTimes(all)
	// Merged times are ascending, so each term can be read through a
	// cursor instead of a fresh binary search per (waveform, time).
	curs := make([]Cursor, len(nonzero))
	for i, w := range nonzero {
		curs[i] = w.Cursor()
	}
	pts := make([]Point, len(times))
	for i, t := range times {
		var s float64
		for j := range curs {
			s += curs[j].At(t)
		}
		pts[i] = Point{T: t, I: s}
	}
	return Waveform{pts: pts}
}

func mergeTimes(sets ...[]Point) []float64 {
	var times []float64
	for _, s := range sets {
		for _, p := range s {
			times = append(times, p.T)
		}
	}
	sort.Float64s(times)
	out := times[:0]
	for i, t := range times {
		if i == 0 || t != times[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// Peak returns the maximum current over all time and the time at which it
// occurs. For PWL waveforms the maximum is attained at a breakpoint.
func (w Waveform) Peak() (peak, at float64) {
	for _, p := range w.pts {
		if p.I > peak {
			peak, at = p.I, p.T
		}
	}
	return peak, at
}

// PeakIn returns the maximum current within [t0, t1] (inclusive) and its
// time. Breakpoints inside the window and the window edges are candidates.
func (w Waveform) PeakIn(t0, t1 float64) (peak, at float64) {
	peak, at = w.At(t0), t0
	if v := w.At(t1); v > peak {
		peak, at = v, t1
	}
	for _, p := range w.pts {
		if p.T > t0 && p.T < t1 && p.I > peak {
			peak, at = p.I, p.T
		}
	}
	return peak, at
}

// Charge integrates the waveform over all time (trapezoidal, exact for
// PWL). With µA and ps conventions the result is in femto-coulombs × 10⁻³
// (1 µA·ps = 10⁻¹⁸ C); callers only use it for relative comparisons.
func (w Waveform) Charge() float64 {
	var q float64
	for i := 1; i < len(w.pts); i++ {
		a, b := w.pts[i-1], w.pts[i]
		q += (a.I + b.I) / 2 * (b.T - a.T)
	}
	return q
}

// SampleUniform evaluates the waveform on n uniformly spaced points across
// [t0, t1], inclusive of both ends. n must be at least 2.
func (w Waveform) SampleUniform(t0, t1 float64, n int) []Point {
	if n < 2 {
		panic("waveform: SampleUniform needs n >= 2")
	}
	out := make([]Point, n)
	step := (t1 - t0) / float64(n-1)
	for i := range out {
		t := t0 + float64(i)*step
		out[i] = Point{T: t, I: w.At(t)}
	}
	return out
}

// Resample returns a waveform whose breakpoints are exactly the given
// times, evaluated from w. This loses information unless every breakpoint
// of w is included. Used to place characterization data on a shared grid.
func (w Waveform) Resample(times []float64) Waveform {
	ts := append([]float64(nil), times...)
	sort.Float64s(ts)
	pts := make([]Point, 0, len(ts))
	for i, t := range ts {
		if i > 0 && t == ts[i-1] {
			continue
		}
		pts = append(pts, Point{T: t, I: w.At(t)})
	}
	return Waveform{pts: pts}
}

// Clip returns the waveform restricted to [t0, t1], with exact boundary
// samples inserted; everything outside is dropped.
func (w Waveform) Clip(t0, t1 float64) Waveform {
	if w.IsZero() || t1 <= t0 {
		return Waveform{}
	}
	pts := []Point{{T: t0, I: w.At(t0)}}
	for _, p := range w.pts {
		if p.T > t0 && p.T < t1 {
			pts = append(pts, p)
		}
	}
	pts = append(pts, Point{T: t1, I: w.At(t1)})
	return Waveform{pts: pts}
}

// Equal reports whether two waveforms evaluate identically within tol at
// every breakpoint of either.
func Equal(a, b Waveform, tol float64) bool {
	for _, t := range mergeTimes(a.pts, b.pts) {
		if math.Abs(a.At(t)-b.At(t)) > tol {
			return false
		}
	}
	return true
}

// String renders a short human-readable summary.
func (w Waveform) String() string {
	if w.IsZero() {
		return "waveform{zero}"
	}
	peak, at := w.Peak()
	return fmt.Sprintf("waveform{%d pts, [%.3g,%.3g] ps, peak %.4g µA @ %.3g ps}",
		len(w.pts), w.First(), w.Last(), peak, at)
}

// Table renders the samples as a two-column text table, for dumping the
// figures' waveform data.
func (w Waveform) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %14s\n", "t(ps)", "I(uA)")
	for _, p := range w.pts {
		fmt.Fprintf(&b, "%12.4f %14.5f\n", p.T, p.I)
	}
	return b.String()
}
