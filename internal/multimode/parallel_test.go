package multimode

import (
	"context"
	"reflect"
	"runtime"
	"testing"
)

// TestParallelDeterminismOptimize requires identical multi-mode results
// under every worker count: the per-intersection zone fan-out writes into
// pre-indexed slots and merges in zone order.
func TestParallelDeterminismOptimize(t *testing.T) {
	tree, modes, lib := violatingTree(t)
	run := func(workers int) *Result {
		cfg := mmConfig(lib, true)
		cfg.Workers = workers
		work := tree.Clone() // Optimize may insert ADBs
		res, err := Optimize(context.Background(), work, modes, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	want := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if got.PeakEstimate != want.PeakEstimate || got.MeanZonePeak != want.MeanZonePeak {
			t.Fatalf("workers=%d: peaks %g/%g != %g/%g",
				w, got.PeakEstimate, got.MeanZonePeak, want.PeakEstimate, want.MeanZonePeak)
		}
		if got.NumADBs != want.NumADBs || got.NumADIs != want.NumADIs || got.ADBInserted != want.ADBInserted {
			t.Fatalf("workers=%d: adjustable counts differ", w)
		}
		if len(got.Assignment) != len(want.Assignment) {
			t.Fatalf("workers=%d: assignment size differs", w)
		}
		for leaf, c := range want.Assignment {
			if got.Assignment[leaf] != c {
				t.Fatalf("workers=%d: leaf %d assigned %v, want %v", w, leaf, got.Assignment[leaf], c)
			}
		}
		if !reflect.DeepEqual(got.Steps, want.Steps) {
			t.Fatalf("workers=%d: bank steps differ:\n got %v\nwant %v", w, got.Steps, want.Steps)
		}
	}
}
