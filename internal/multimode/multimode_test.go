package multimode

import (
	"context"
	"testing"

	"wavemin/internal/adb"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
)

// violatingTree builds a two-island design whose M2 skew violates κ badly
// enough that sizing alone cannot fix it: the ADB path of Fig. 13.
func violatingTree(t testing.TB) (*clocktree.Tree, []clocktree.Mode, *cell.Library) {
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < 12; i++ {
		sinks = append(sinks, cts.Sink{X: 15 + float64(i*4)/1.5, Y: 20 + float64(i%5)*8, Cap: 8})
		sinks = append(sinks, cts.Sink{X: 215 + float64(i*4)/1.5, Y: 20 + float64(i%5)*8, Cap: 8})
	}
	// Leaves start as BUF_X8 so the initial cells lie inside the sizing
	// library's delay range (the paper's setup: leaves are assigned among
	// BUF_X8/BUF_X16/INV_X8/INV_X16).
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := cts.Synthesize(sinks, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	tree.Walk(func(n *clocktree.Node) {
		if n.X >= 150 {
			n.Domain = "A2"
		} else {
			n.Domain = "A1"
		}
	})
	modes := []clocktree.Mode{
		{Name: "M1", Supplies: map[string]float64{"A1": 1.1, "A2": 1.1}},
		{Name: "M2", Supplies: map[string]float64{"A1": 1.1, "A2": 0.9}},
	}
	// Premise of the ADB tests: sizing alone cannot fix this design.
	if s := tree.ComputeTiming(modes[1]).Skew(tree); s < 10 {
		t.Fatalf("fixture premise broken: M2 skew %g too small", s)
	}
	return tree, modes, lib
}

func mmConfig(lib *cell.Library, withADI bool) Config {
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		panic(err)
	}
	cfg := Config{
		Library: sub,
		ADBCell: lib.MustByName("ADB_X8"),
		Kappa:   6, Samples: 16, Epsilon: 0.01,
	}
	if withADI {
		cfg.ADICell = lib.MustByName("ADI_X8")
	}
	return cfg
}

func TestOptimizeInsertsADBsWhenNeeded(t *testing.T) {
	tree, modes, lib := violatingTree(t)
	cfg := mmConfig(lib, true)
	if tree.MeetsSkew(cfg.Kappa, modes) {
		t.Skip("premise broken: no violation to fix")
	}
	res, err := Optimize(context.Background(), tree, modes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ADBInserted == 0 {
		t.Fatal("expected ADB insertion")
	}
	if res.NumADBs+res.NumADIs == 0 {
		t.Fatal("adjustable sites vanished from the assignment")
	}
	if err := ApplyResult(context.Background(), tree, modes, cfg.Kappa, res); err != nil {
		t.Fatal(err)
	}
	if !tree.MeetsSkew(cfg.Kappa+2.0, modes) {
		for _, m := range modes {
			t.Logf("mode %s skew %g", m.Name, tree.ComputeTiming(m).Skew(tree))
		}
		t.Fatal("multi-mode skew violated after ClkWaveMin-M")
	}
}

func TestADBSitesNeverBecomePlainAndViceVersa(t *testing.T) {
	tree, modes, lib := violatingTree(t)
	cfg := mmConfig(lib, true)
	// Pre-insert so we know the sites.
	if _, err := adb.Insert(context.Background(), tree, cfg.ADBCell, modes, cfg.Kappa); err != nil {
		t.Fatal(err)
	}
	sites := map[clocktree.NodeID]bool{}
	for _, s := range adb.Sites(tree) {
		sites[s] = true
	}
	res, err := Optimize(context.Background(), tree, modes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for leaf, c := range res.Assignment {
		if sites[leaf] && !c.Adjustable() {
			t.Errorf("ADB site %d demoted to plain cell %s", leaf, c.Name)
		}
		if !sites[leaf] && c.Adjustable() {
			t.Errorf("plain site %d promoted to adjustable %s", leaf, c.Name)
		}
	}
}

func TestADIEnabledNeverWorseThanDisabled(t *testing.T) {
	// Observation 3: offering ADIs at ADB sites can only enlarge the
	// search space. With generous caps, the estimate must not get worse.
	treeA, modesA, lib := violatingTree(t)
	cfgOff := mmConfig(lib, false)
	cfgOff.PerModeIntervals = 10
	cfgOff.MaxIntersections = 40
	resOff, err := Optimize(context.Background(), treeA, modesA, cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	treeB, modesB, _ := violatingTree(t)
	cfgOn := mmConfig(lib, true)
	cfgOn.PerModeIntervals = 10
	cfgOn.MaxIntersections = 40
	resOn, err := Optimize(context.Background(), treeB, modesB, cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.PeakEstimate > resOff.PeakEstimate*1.05+1e-9 {
		t.Fatalf("ADI-enabled estimate %g worse than disabled %g",
			resOn.PeakEstimate, resOff.PeakEstimate)
	}
}

func TestAdjustableStepsRecordedPerMode(t *testing.T) {
	tree, modes, lib := violatingTree(t)
	res, err := Optimize(context.Background(), tree, modes, mmConfig(lib, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.ADBInserted > 0 && len(res.Steps) == 0 {
		t.Fatal("adjustable assignment lost its bank settings")
	}
	for leaf, st := range res.Steps {
		if !res.Assignment[leaf].Adjustable() {
			t.Errorf("steps recorded for non-adjustable leaf %d", leaf)
		}
		for _, m := range modes {
			if _, ok := st[m.Name]; !ok {
				t.Errorf("leaf %d missing steps for mode %s", leaf, m.Name)
			}
		}
	}
}

func TestFastModeProducesValidResult(t *testing.T) {
	tree, modes, lib := violatingTree(t)
	cfg := mmConfig(lib, true)
	cfg.Fast = true
	res, err := Optimize(context.Background(), tree, modes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyResult(context.Background(), tree, modes, cfg.Kappa, res); err != nil {
		t.Fatal(err)
	}
	if !tree.MeetsSkew(cfg.Kappa+2.0, modes) {
		t.Fatal("fast mode violated skew")
	}
}

func TestConfigValidation(t *testing.T) {
	tree, modes, lib := violatingTree(t)
	if _, err := NewProblem(tree, modes, Config{Library: nil, Kappa: 5}); err == nil {
		t.Error("nil library should error")
	}
	if _, err := NewProblem(tree, modes, Config{Library: lib, Kappa: 0}); err == nil {
		t.Error("zero kappa should error")
	}
	if _, err := NewProblem(tree, nil, Config{Library: lib, Kappa: 5}); err == nil {
		t.Error("no modes should error")
	}
	// Infeasible without an ADB cell configured.
	cfg := mmConfig(lib, false)
	cfg.ADBCell = nil
	if _, err := Optimize(context.Background(), tree, modes, cfg); err == nil {
		t.Error("expected error: violation but no ADB cell")
	}
}

func TestSingleModeDegeneratesToPolarity(t *testing.T) {
	// With one nominal mode, ClkWaveMin-M is just ClkWaveMin: it should
	// find a feasible assignment without ADBs on a balanced tree.
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < 6; i++ {
		sinks = append(sinks, cts.Sink{X: 20 + float64(i*3), Y: 20, Cap: 8})
	}
	tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mmConfig(lib, false)
	cfg.Kappa = 20
	res, err := Optimize(context.Background(), tree, []clocktree.Mode{clocktree.NominalMode}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ADBInserted != 0 || res.NumADBs != 0 {
		t.Fatalf("unexpected ADBs in single-mode: %d/%d", res.ADBInserted, res.NumADBs)
	}
	counts := map[cell.Kind]int{}
	for _, c := range res.Assignment {
		counts[c.Kind]++
	}
	if counts[cell.Inv] == 0 {
		t.Fatalf("expected polarity mixing, got %v", counts)
	}
}
