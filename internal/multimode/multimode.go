// Package multimode implements ClkWaveMin-M (paper §VI, Fig. 13): clock
// buffer polarity assignment with sizing for designs with multiple power
// modes.
//
// The clock skew bound must hold in *every* mode. Feasible arrival-time
// intervals are computed per mode, then intersected: an intersection keeps,
// for each sink, the cell types feasible in all modes' windows at once
// (paper Fig. 11, Table IV). Intersections are pruned by their degree of
// freedom (Fig. 14: more freedom correlates with lower noise). The noise
// of each mode becomes extra dimensions of the MOSP weight vectors
// (Fig. 12), so the single-mode machinery of internal/mosp solves the
// multi-mode min–max directly.
//
// When sizing and polarity alone cannot satisfy κ, ADBs are inserted first
// (internal/adb); ADB sites may then be re-assigned to ADIs — the paper's
// proposed adjustable delay inverter — but never back to plain cells, and
// plain sites never become adjustable (paper §VI restriction).
package multimode

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"wavemin/internal/adb"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/faultinject"
	"wavemin/internal/mosp"
	"wavemin/internal/obs"
	"wavemin/internal/parallel"
	"wavemin/internal/polarity"
	"wavemin/internal/waveform"
)

// Config parameterizes the multi-mode optimization.
type Config struct {
	// Library provides the plain cells (B ∪ I) offered at non-ADB sites.
	Library *cell.Library
	// ADBCell is used for skew-fixing insertion and offered at ADB sites.
	ADBCell *cell.Cell
	// ADICell, when non-nil, is offered at ADB sites as the inverting
	// alternative. Nil disables ADIs (the Observation-3 ablation).
	ADICell *cell.Cell

	Kappa    float64 // skew bound, every mode, ps
	Samples  int     // |S| per mode (split over the four rail/edge groups)
	Epsilon  float64 // Warburton ε for the per-zone solver
	ZoneSize float64 // µm; 0 = polarity.DefaultZoneSize
	Fast     bool    // use the ClkWaveMin-f per-zone heuristic

	// PerModeIntervals caps the per-mode feasible interval lists before
	// the cartesian product (taken in DoF order); 0 = 6.
	PerModeIntervals int
	// MaxIntersections caps how many feasible intersections are fully
	// optimized (DoF order); 0 = 12.
	MaxIntersections int
	// MaxLabels caps the per-layer Pareto label set (0 = 4000).
	MaxLabels int
	// IntervalSpread changes the per-mode interval cap from "top N by
	// degree of freedom" to "N evenly spaced across the DoF range" —
	// used by the Fig. 14 study, which needs poor intersections too.
	IntervalSpread bool
	// Workers bounds the goroutines fanned out over the per-intersection
	// zone solves (each zone's MOSP instance is independent). The
	// intersection loop itself stays serial so nesting cannot multiply
	// goroutine counts. 0 = GOMAXPROCS, 1 = serial; results are identical
	// for every worker count.
	Workers int
}

// Window is one mode's arrival-time window [Lo, Hi].
type Window struct{ Lo, Hi float64 }

// Intersection is one combination of per-mode windows with the per-leaf
// surviving candidate sets.
type Intersection struct {
	Windows  []Window
	Feasible [][]int // [leaf index][candidate index into Problem cands]
	DoF      int
}

// cand is one (leaf, cell) option characterized across modes.
type cand struct {
	c      *cell.Cell
	baseAT []float64             // per mode, zero bank steps
	waves  [][]waveform.Waveform // [mode][group], zero bank steps, absolute t
}

func (c *cand) adjMax() float64 {
	if c.c.Adjustable() {
		return c.c.MaxAdjust()
	}
	return 0
}

// stepsFor returns the minimal bank steps putting the candidate's arrival
// inside [lo, hi] in the given mode, and whether that is possible.
func (c *cand) stepsFor(mode int, lo, hi float64) (int, bool) {
	at := c.baseAT[mode]
	if at > hi+1e-9 {
		return 0, false
	}
	if at >= lo-1e-9 {
		return 0, true
	}
	if !c.c.Adjustable() {
		return 0, false
	}
	steps := int(math.Ceil((lo-at)/c.c.StepPs - 1e-9))
	if steps > c.c.MaxSteps {
		return 0, false
	}
	if at+float64(steps)*c.c.StepPs > hi+1e-9 {
		return 0, false
	}
	return steps, true
}

// Problem is the assembled multi-mode instance.
type Problem struct {
	tree    *clocktree.Tree
	modes   []clocktree.Mode
	cfg     Config
	timings []*clocktree.Timing
	leaves  []clocktree.NodeID
	cands   [][]cand // [leaf index][candidate]
	zones   []polarity.Zone
}

// NewProblem characterizes candidates for every leaf in every mode. The
// tree must already meet κ via ADBs if sizing alone cannot (see Optimize,
// which handles insertion).
func NewProblem(t *clocktree.Tree, modes []clocktree.Mode, cfg Config) (*Problem, error) {
	if cfg.Library == nil {
		return nil, fmt.Errorf("multimode: nil library")
	}
	if cfg.Kappa <= 0 {
		return nil, fmt.Errorf("multimode: non-positive kappa")
	}
	if len(modes) == 0 {
		return nil, fmt.Errorf("multimode: no modes")
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 4
	}
	p := &Problem{tree: t, modes: modes, cfg: cfg}
	for _, m := range modes {
		p.timings = append(p.timings, t.ComputeTiming(m))
	}
	p.leaves = t.Leaves()
	p.zones = polarity.LeafZones(polarity.PartitionZones(t, cfg.ZoneSize))

	var plain []*cell.Cell
	for _, c := range cfg.Library.Cells() {
		if !c.Adjustable() {
			plain = append(plain, c)
		}
	}
	for _, leaf := range p.leaves {
		nd := t.Node(leaf)
		var options []*cell.Cell
		if nd.Cell.Adjustable() {
			// ADB site: ADB or (if enabled) ADI only (§VI restriction).
			adbCell := cfg.ADBCell
			if adbCell == nil {
				adbCell = nd.Cell
			}
			options = append(options, adbCell)
			if cfg.ADICell != nil {
				options = append(options, cfg.ADICell)
			}
		} else {
			options = plain
		}
		var cs []cand
		for _, c := range options {
			k := cand{c: c, baseAT: make([]float64, len(modes))}
			for mi, m := range modes {
				tm := p.timings[mi]
				vdd := m.VDDOf(nd.Domain)
				load := tm.Load[leaf]
				atIn := tm.ATIn[leaf] + polarity.SelfLoadShift(t, tm, m, leaf, c)
				edge := t.EdgeAtInput(leaf, cell.Rising)
				k.baseAT[mi] = atIn + c.Delay(load, vdd)
				iddR, issR := c.Currents(edge, load, vdd, tm.SlewIn[leaf])
				iddF, issF := c.Currents(edge.Opposite(), load, vdd, tm.SlewIn[leaf])
				k.waves = append(k.waves, []waveform.Waveform{
					iddR.Shift(atIn), issR.Shift(atIn), iddF.Shift(atIn), issF.Shift(atIn),
				})
			}
			cs = append(cs, k)
		}
		p.cands = append(p.cands, cs)
	}
	return p, nil
}

// Leaves exposes the leaf order used by candidate/feasibility indexing.
func (p *Problem) Leaves() []clocktree.NodeID { return p.leaves }

// CandidateCells lists the cells offered to the leaf at index li.
func (p *Problem) CandidateCells(li int) []*cell.Cell {
	out := make([]*cell.Cell, len(p.cands[li]))
	for i, c := range p.cands[li] {
		out[i] = c.c
	}
	return out
}

// modeIntervals enumerates feasible windows for one mode, DoF-ordered.
func (p *Problem) modeIntervals(mi int) []Window {
	var anchors []float64
	for _, cs := range p.cands {
		for _, c := range cs {
			anchors = append(anchors, c.baseAT[mi], c.baseAT[mi]+c.adjMax())
		}
	}
	sort.Float64s(anchors)
	type scored struct {
		w   Window
		dof int
		sig string
	}
	var out []scored
	seen := map[string]bool{}
	for i, t := range anchors {
		if i > 0 && t-anchors[i-1] < 1e-9 {
			continue
		}
		w := Window{Lo: t - p.cfg.Kappa, Hi: t}
		dof := 0
		ok := true
		var sig strings.Builder
		for li := range p.cands {
			n := 0
			for ci := range p.cands[li] {
				if _, feas := p.cands[li][ci].stepsFor(mi, w.Lo, w.Hi); feas {
					n++
					fmt.Fprintf(&sig, "%d.%d,", li, ci)
				}
			}
			if n == 0 {
				ok = false
				break
			}
			dof += n
		}
		if !ok || seen[sig.String()] {
			continue
		}
		seen[sig.String()] = true
		out = append(out, scored{w: w, dof: dof})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].dof > out[j].dof })
	limit := p.cfg.PerModeIntervals
	if limit <= 0 {
		limit = 6
	}
	if len(out) > limit {
		if p.cfg.IntervalSpread {
			// Even subsample across the DoF-sorted list: keeps the best
			// first but also the poor tail (the Fig. 14 scatter).
			picked := make([]scored, 0, limit)
			for i := 0; i < limit; i++ {
				picked = append(picked, out[i*(len(out)-1)/(limit-1)])
			}
			out = picked
		} else {
			out = out[:limit]
		}
	}
	ws := make([]Window, len(out))
	for i, s := range out {
		ws[i] = s.w
	}
	return ws
}

// Intersections enumerates feasible intersections of per-mode windows,
// sorted by decreasing degree of freedom.
func (p *Problem) Intersections() []Intersection {
	perMode := make([][]Window, len(p.modes))
	for mi := range p.modes {
		perMode[mi] = p.modeIntervals(mi)
		if len(perMode[mi]) == 0 {
			return nil
		}
	}
	var out []Intersection
	combo := make([]int, len(p.modes))
	var rec func(mi int)
	rec = func(mi int) {
		if mi == len(p.modes) {
			ix := Intersection{Windows: make([]Window, len(p.modes))}
			for m, c := range combo {
				ix.Windows[m] = perMode[m][c]
			}
			ix.Feasible = make([][]int, len(p.cands))
			for li := range p.cands {
				for ci := range p.cands[li] {
					feasAll := true
					for m := range p.modes {
						if _, feas := p.cands[li][ci].stepsFor(m, ix.Windows[m].Lo, ix.Windows[m].Hi); !feas {
							feasAll = false
							break
						}
					}
					if feasAll {
						ix.Feasible[li] = append(ix.Feasible[li], ci)
					}
				}
				if len(ix.Feasible[li]) == 0 {
					return // infeasible intersection
				}
				ix.DoF += len(ix.Feasible[li])
			}
			out = append(out, ix)
			return
		}
		for c := range perMode[mi] {
			combo[mi] = c
			rec(mi + 1)
		}
	}
	rec(0)
	sort.SliceStable(out, func(i, j int) bool { return out[i].DoF > out[j].DoF })
	return out
}

// Result is a committed multi-mode optimization outcome.
type Result struct {
	Assignment   polarity.Assignment
	Steps        map[clocktree.NodeID]map[string]int // adjustable sites
	NumADBs      int
	NumADIs      int
	ADBInserted  int // ADBs placed by the insertion phase
	PeakEstimate float64
	// MeanZonePeak averages the per-zone optimized peak estimates — a
	// smoother per-intersection quality signal than the max (used by the
	// Fig. 14 study).
	MeanZonePeak float64
	Windows      []Window // chosen per-mode windows
	Feasible     int      // feasible intersections found
	Tried        int      // intersections fully optimized
}

// zoneResult is one zone's solved outcome: the chosen cell (and bank
// steps, for adjustable sites) per leaf of the zone, plus the optimizer's
// peak estimate.
type zoneResult struct {
	cells []*cell.Cell
	steps []map[string]int // nil entry = not adjustable
	peak  float64
}

// OptimizeIntersection solves every zone within one intersection. The
// independent per-zone MOSP instances fan out over cfg.Workers goroutines
// and merge in zone order, so the result is identical for any worker
// count. Cancellation is forwarded into every per-zone solver.
func (p *Problem) OptimizeIntersection(ctx context.Context, ix *Intersection) (*Result, error) {
	res := &Result{
		Assignment: make(polarity.Assignment),
		Steps:      make(map[clocktree.NodeID]map[string]int),
		Windows:    ix.Windows,
	}
	leafIdx := make(map[clocktree.NodeID]int, len(p.leaves))
	for i, l := range p.leaves {
		leafIdx[l] = i
	}
	perGroup := p.cfg.Samples / int(polarity.NumGroups)
	if perGroup < 1 {
		perGroup = 1
	}
	sp := obs.FromContext(ctx)
	solved := make([]zoneResult, len(p.zones))
	ferr := parallel.ForEach(ctx, p.cfg.Workers, len(p.zones), func(i int) error {
		zctx := ctx
		if zsp := sp.ChildAt(i, "zone"); zsp != nil {
			defer zsp.End()
			zsp.Count("zone.leaves", int64(len(p.zones[i].Leaves)))
			zctx = obs.WithSpan(ctx, zsp)
		}
		zr, err := p.solveZone(zctx, ix, &p.zones[i], leafIdx, perGroup)
		if err != nil {
			return err
		}
		solved[i] = zr
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	for i := range p.zones {
		zr := &solved[i]
		for zi, leaf := range p.zones[i].Leaves {
			res.Assignment[leaf] = zr.cells[zi]
			if zr.steps[zi] != nil {
				res.Steps[leaf] = zr.steps[zi]
			}
		}
		if zr.peak > res.PeakEstimate {
			res.PeakEstimate = zr.peak
		}
		res.MeanZonePeak += zr.peak
	}
	if len(p.zones) > 0 {
		res.MeanZonePeak /= float64(len(p.zones))
	}
	for _, c := range res.Assignment {
		switch c.Kind {
		case cell.ADB:
			res.NumADBs++
		case cell.ADI:
			res.NumADIs++
		}
	}
	return res, nil
}

// solveZone builds and solves one zone's multi-mode MOSP instance. It
// runs on worker goroutines; the Problem is read-only here and the zone
// is taken by pointer but never mutated.
func (p *Problem) solveZone(
	ctx context.Context, ix *Intersection, zone *polarity.Zone,
	leafIdx map[clocktree.NodeID]int, perGroup int,
) (zoneResult, error) {
	faultinject.At(faultinject.SiteMultimodeZone)
	// Shifted candidate waveforms and steps per (leaf, candidate).
	type zcand struct {
		ci    int
		steps []int // per mode
		waves [][]waveform.Waveform
	}
	feas := make([][]zcand, len(zone.Leaves))
	for zi, leaf := range zone.Leaves {
		li := leafIdx[leaf]
		for _, ci := range ix.Feasible[li] {
			c := &p.cands[li][ci]
			zc := zcand{ci: ci, steps: make([]int, len(p.modes))}
			ok := true
			for mi := range p.modes {
				s, feasOK := c.stepsFor(mi, ix.Windows[mi].Lo, ix.Windows[mi].Hi)
				if !feasOK {
					ok = false
					break
				}
				zc.steps[mi] = s
			}
			if !ok {
				continue
			}
			zc.waves = make([][]waveform.Waveform, len(p.modes))
			for mi := range p.modes {
				shift := float64(zc.steps[mi]) * stepPsOf(c.c)
				ws := make([]waveform.Waveform, polarity.NumGroups)
				for g := 0; g < int(polarity.NumGroups); g++ {
					ws[g] = c.waves[mi][g].Shift(shift)
				}
				zc.waves[mi] = ws
			}
			feas[zi] = append(feas[zi], zc)
		}
		if len(feas[zi]) == 0 {
			return zoneResult{}, fmt.Errorf("multimode: zone %v leaf %d infeasible", zone.Key, leaf)
		}
	}
	if zsp := obs.FromContext(ctx); zsp != nil {
		var cands int64
		for zi := range feas {
			cands += int64(len(feas[zi]))
		}
		zsp.Count("zone.candidates", cands)
	}
	// Per-mode, per-group baselines and sample sets.
	baselines := make([][]waveform.Waveform, len(p.modes))
	samples := make([][]waveform.SampleSet, len(p.modes))
	for mi := range p.modes {
		baselines[mi] = make([]waveform.Waveform, polarity.NumGroups)
		samples[mi] = make([]waveform.SampleSet, polarity.NumGroups)
		for _, id := range zone.NonLeaves {
			iddR, issR := p.tree.NodeCurrents(p.timings[mi], id, cell.Rising)
			iddF, issF := p.tree.NodeCurrents(p.timings[mi], id, cell.Falling)
			for g, w := range []waveform.Waveform{iddR, issR, iddF, issF} {
				baselines[mi][g] = waveform.Add(baselines[mi][g], w)
			}
		}
		for g := 0; g < int(polarity.NumGroups); g++ {
			ws := []waveform.Waveform{baselines[mi][g]}
			for zi := range feas {
				for _, zc := range feas[zi] {
					ws = append(ws, zc.waves[mi][g])
				}
			}
			samples[mi][g] = waveform.HotSpots(perGroup, ws...)
		}
	}
	vector := func(sel func(mi, g int) waveform.Waveform) []float64 {
		var out []float64
		for mi := range p.modes {
			for g := 0; g < int(polarity.NumGroups); g++ {
				out = append(out, samples[mi][g].Vector(sel(mi, g))...)
			}
		}
		return out
	}
	graph := &mosp.Graph{Baseline: vector(func(mi, g int) waveform.Waveform { return baselines[mi][g] })}
	for zi := range feas {
		var layer []mosp.Vertex
		for fi, zc := range feas[zi] {
			zc := zc
			layer = append(layer, mosp.Vertex{
				Weight: vector(func(mi, g int) waveform.Waveform { return zc.waves[mi][g] }),
				Tag:    fi,
			})
		}
		graph.Layers = append(graph.Layers, layer)
	}
	var sol mosp.Solution
	var err error
	maxLabels := p.cfg.MaxLabels
	if maxLabels <= 0 {
		maxLabels = 4000
	}
	if p.cfg.Fast {
		sol, err = mosp.SolveFast(ctx, graph)
	} else {
		sol, err = mosp.Solve(ctx, graph, mosp.Options{Epsilon: p.cfg.Epsilon, MaxLabels: maxLabels})
	}
	if err != nil {
		return zoneResult{}, err
	}
	zr := zoneResult{
		cells: make([]*cell.Cell, len(zone.Leaves)),
		steps: make([]map[string]int, len(zone.Leaves)),
		peak:  sol.Max,
	}
	for zi, leaf := range zone.Leaves {
		zc := feas[zi][graph.Layers[zi][sol.Picks[zi]].Tag]
		chosen := p.cands[leafIdx[leaf]][zc.ci]
		zr.cells[zi] = chosen.c
		if chosen.c.Adjustable() {
			st := make(map[string]int, len(p.modes))
			for mi, m := range p.modes {
				st[m.Name] = zc.steps[mi]
			}
			zr.steps[zi] = st
		}
	}
	return zr, nil
}

func stepPsOf(c *cell.Cell) float64 {
	if c.Adjustable() {
		return c.StepPs
	}
	return 0
}

// Optimize runs the full ClkWaveMin-M flow on the tree: if sizing and
// polarity cannot meet κ in all modes, ADBs are inserted (mutating the
// tree); then candidates are built, intersections enumerated, and the
// best-DoF intersections optimized. The returned result is not yet
// applied; call ApplyResult. Cancellation is checked per intersection and
// forwarded into the per-zone solves.
func Optimize(ctx context.Context, t *clocktree.Tree, modes []clocktree.Mode, cfg Config) (*Result, error) {
	ctx, sp := obs.Start(ctx, "multimode")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("modes", fmt.Sprintf("%d", len(modes)))
		sp.SetAttr("fast", fmt.Sprintf("%t", cfg.Fast))
	}
	inserted := 0
	p, err := NewProblem(t, modes, cfg)
	if err != nil {
		return nil, err
	}
	ixs := p.Intersections()
	if len(ixs) == 0 {
		// Sizing/polarity alone cannot hold κ everywhere: insert ADBs
		// (Fig. 13's Insert-ADB module) and rebuild.
		adbCell := cfg.ADBCell
		if adbCell == nil {
			return nil, fmt.Errorf("multimode: infeasible without ADBs and no ADB cell configured")
		}
		ins, err := adb.Insert(ctx, t, adbCell, modes, cfg.Kappa)
		if err != nil {
			return nil, fmt.Errorf("multimode: ADB insertion: %w", err)
		}
		inserted = ins.NumADBs()
		p, err = NewProblem(t, modes, cfg)
		if err != nil {
			return nil, err
		}
		ixs = p.Intersections()
		if len(ixs) == 0 {
			return nil, fmt.Errorf("multimode: no feasible intersection even after %d ADBs", inserted)
		}
	}
	maxIx := cfg.MaxIntersections
	if maxIx <= 0 {
		maxIx = 12
	}
	tried := ixs
	if len(tried) > maxIx {
		tried = tried[:maxIx]
	}
	sp.Count("multimode.intersections_feasible", int64(len(ixs)))
	sp.Count("multimode.intersections_tried", int64(len(tried)))
	sp.Count("multimode.adbs_inserted", int64(inserted))
	var best *Result
	for i := range tried {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		isp := sp.ChildAt(i, "intersection")
		isp.Count("intersection.dof", int64(tried[i].DoF))
		res, err := p.OptimizeIntersection(obs.WithSpan(ctx, isp), &tried[i])
		isp.End()
		if err != nil {
			return nil, err
		}
		isp.Gauge("intersection.peak_estimate", res.PeakEstimate)
		if best == nil || res.PeakEstimate < best.PeakEstimate {
			best = res
		}
	}
	best.Feasible = len(ixs)
	best.Tried = len(tried)
	best.ADBInserted = inserted
	return best, nil
}

// ApplyResult commits the assignment and bank settings to the tree, then
// retunes the adjustable sites against the realized timing: committing the
// assignment shifts parent loads slightly (the second-order effect
// Observation 4 neglects), and the per-mode banks absorb that drift. The
// retune error is returned when the drift exceeds what the banks can fix
// (only possible with very tight κ and no adjustable sites).
func ApplyResult(ctx context.Context, t *clocktree.Tree, modes []clocktree.Mode, kappa float64, res *Result) error {
	for leaf, c := range res.Assignment {
		t.SetCell(leaf, c)
		if st, ok := res.Steps[leaf]; ok {
			for mode, steps := range st {
				t.SetAdjustSteps(leaf, mode, steps)
			}
		}
	}
	if len(adb.Sites(t)) == 0 {
		return nil // nothing to retune; callers tolerate plain-cell drift
	}
	_, err := adb.Retune(ctx, t, modes, kappa)
	return err
}
