package multimode

import (
	"context"
	"fmt"
	"math"
	"testing"

	"wavemin/internal/adb"
)

func TestDebug3(t *testing.T) {
	tree, modes, lib := violatingTree(t)
	cfg := mmConfig(lib, true)
	ins, err := adb.Insert(context.Background(), tree, cfg.ADBCell, modes, cfg.Kappa)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("inserted %d ADBs; skews:", ins.NumADBs())
	for _, m := range modes {
		fmt.Printf(" %s=%.2f", m.Name, tree.ComputeTiming(m).Skew(tree))
	}
	fmt.Println()
	p, err := NewProblem(tree, modes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for mi := range modes {
		ws := p.modeIntervals(mi)
		fmt.Printf("mode %d: %d windows\n", mi, len(ws))
		if len(ws) == 0 {
			// find the blocking leaf for a sample anchor
			// print per-leaf candidate AT ranges
			for li, leaf := range p.leaves {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, c := range p.cands[li] {
					lo = math.Min(lo, c.baseAT[mi])
					hi = math.Max(hi, c.baseAT[mi]+c.adjMax())
				}
				fmt.Printf("  leaf %d (%s): [%0.2f, %0.2f]\n", leaf, tree.Node(leaf).Cell.Name, lo, hi)
			}
		}
	}
	fmt.Println("intersections:", len(p.Intersections()))
}
