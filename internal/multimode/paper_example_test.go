package multimode

import (
	"context"
	"math"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

// fig10Tree reconstructs the paper's Fig. 10: a BUF_X2 root driving two
// BUF_X2 internal buffers (voltage islands A1 and A2), each driving two
// BUF_X2 leaves. Wire delays 7 ps (root→mid) and 6 ps (mid→leaf) give
// every leaf arrival 19+7+19+6+19 = 70 in M1; in M2 island A2 drops to
// 0.9 V, slowing its mid and leaves by 4 ps each → 78 (the paper's "+4
// from the parent ... and another +4 from each of e3 and e4").
func fig10Tree(t testing.TB) (*clocktree.Tree, []clocktree.Mode, *cell.Library) {
	lib := cell.PaperLibrary()
	buf2 := lib.MustByName("BUF_X2")
	// Wire delay = R·(C/2 + Cin(child)); C-dominant wires keep the delay
	// nearly independent of the child's input cap, as in the paper's
	// lumped example. The internal nodes sit >50 µm from the leaves so the
	// leaf zone has no non-leaf baseline — the toy considers leaf noise
	// only.
	tr := clocktree.New(buf2, 25, 140)
	m1 := tr.AddChild(tr.Root(), buf2, 15, 120, 0.5, 27) // 7 ps
	m2 := tr.AddChild(tr.Root(), buf2, 35, 120, 0.5, 27)
	var leaves []clocktree.NodeID
	for i, mid := range []clocktree.NodeID{m1, m1, m2, m2} {
		leaf := tr.AddChild(mid, buf2, float64(10+8*i), 10, 0.5, 23) // 6 ps
		tr.SetSinkCap(leaf, 0)
		leaves = append(leaves, leaf)
	}
	tr.SetDomainSubtree(tr.Root(), "A1")
	tr.SetDomainSubtree(m2, "A2")
	modes := []clocktree.Mode{
		{Name: "M1", Supplies: map[string]float64{"A1": 1.1, "A2": 1.1}},
		{Name: "M2", Supplies: map[string]float64{"A1": 1.1, "A2": 0.9}},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr, modes, lib
}

func TestPaperFig10Arrivals(t *testing.T) {
	tr, modes, _ := fig10Tree(t)
	tm1 := tr.ComputeTiming(modes[0])
	for _, leaf := range tr.Leaves() {
		if got := tm1.ATOut[leaf]; math.Abs(got-70) > 1e-9 {
			t.Errorf("M1 leaf %d arrival %g, want 70", leaf, got)
		}
	}
	tm2 := tr.ComputeTiming(modes[1])
	want := []float64{70, 70, 78, 78}
	for i, leaf := range tr.Leaves() {
		if got := tm2.ATOut[leaf]; math.Abs(got-want[i]) > 1e-9 {
			t.Errorf("M2 leaf %d arrival %g, want %g", leaf, got, want[i])
		}
	}
	if s := tm2.Skew(tr); math.Abs(s-8) > 1e-9 {
		t.Errorf("M2 skew %g, want 8 (the κ=5 violation)", s)
	}
}

func TestPaperTableIVIntersections(t *testing.T) {
	tr, modes, lib := fig10Tree(t)
	p, err := NewProblem(tr, modes, Config{Library: lib, Kappa: 5, Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	ixs := p.Intersections()
	if len(ixs) != 3 {
		t.Fatalf("feasible intersections = %d, want 3 (paper Table IV)", len(ixs))
	}
	// Index intersections by (HiM1, HiM2) as the paper names them.
	byName := map[[2]float64]*Intersection{}
	for i := range ixs {
		byName[[2]float64{ixs[i].Windows[0].Hi, ixs[i].Windows[1].Hi}] = &ixs[i]
	}
	for _, want := range [][2]float64{{75, 79}, {75, 78}, {72, 77}} {
		if byName[want] == nil {
			t.Fatalf("intersection (%g,%g) missing; got %v", want[0], want[1], keysOf(byName))
		}
	}
	// Exact Table IV feasibility: cell names per leaf.
	check := func(ix *Intersection, wantPerLeaf [][]string) {
		t.Helper()
		for li, want := range wantPerLeaf {
			var got []string
			for _, ci := range ix.Feasible[li] {
				got = append(got, p.CandidateCells(li)[ci].Name)
			}
			if len(got) != len(want) {
				t.Fatalf("leaf %d: feasible %v, want %v", li, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("leaf %d: feasible %v, want %v", li, got, want)
				}
			}
		}
	}
	// Candidate cells are in library (name) order: BUF_X1, BUF_X2, INV_X1, INV_X2.
	check(byName[[2]float64{75, 79}], [][]string{
		{"BUF_X1"}, {"BUF_X1"}, {"BUF_X2", "INV_X1"}, {"BUF_X2", "INV_X1"},
	})
	check(byName[[2]float64{75, 78}], [][]string{
		{"BUF_X1"}, {"BUF_X1"}, {"BUF_X2"}, {"BUF_X2"},
	})
	check(byName[[2]float64{72, 77}], [][]string{
		{"INV_X1"}, {"INV_X1"}, {"INV_X2"}, {"INV_X2"},
	})
	// Paper: DoF of (75,79) is 6 and of (75,78) is 4.
	if byName[[2]float64{75, 79}].DoF != 6 {
		t.Errorf("DoF(75,79) = %d, want 6", byName[[2]float64{75, 79}].DoF)
	}
	if byName[[2]float64{75, 78}].DoF != 4 {
		t.Errorf("DoF(75,78) = %d, want 4", byName[[2]float64{75, 78}].DoF)
	}
	// DoF ordering puts (75,79) first.
	if ixs[0].Windows[0].Hi != 75 || ixs[0].Windows[1].Hi != 79 {
		t.Errorf("DoF ordering wrong: first intersection (%g,%g)",
			ixs[0].Windows[0].Hi, ixs[0].Windows[1].Hi)
	}
}

func keysOf(m map[[2]float64]*Intersection) [][2]float64 {
	var out [][2]float64
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestPaperFig12OptimalAssignment(t *testing.T) {
	// Optimizing the whole instance must land in intersection (75,79) with
	// BUF_X1 on e1/e2 and INV_X1 on e3/e4 — clock skew 3 in M1 and 4 in M2
	// (paper §VI).
	tr, modes, lib := fig10Tree(t)
	res, err := Optimize(context.Background(), tr, modes, Config{
		Library: lib, Kappa: 5, Samples: 16, Epsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ADBInserted != 0 {
		t.Fatalf("no ADBs should be needed, inserted %d", res.ADBInserted)
	}
	leaves := tr.Leaves()
	want := []string{"BUF_X1", "BUF_X1", "INV_X1", "INV_X1"}
	for i, leaf := range leaves {
		if got := res.Assignment[leaf].Name; got != want[i] {
			t.Errorf("leaf %d assigned %s, want %s", i, got, want[i])
		}
	}
	if res.Windows[0].Hi != 75 || res.Windows[1].Hi != 79 {
		t.Errorf("chosen windows (%g,%g), want (75,79)", res.Windows[0].Hi, res.Windows[1].Hi)
	}
	if err := ApplyResult(context.Background(), tr, modes, 5, res); err != nil {
		t.Fatal(err)
	}
	// Realized skews: 3 in M1 (75 vs 72), 4 in M2 (75 vs 79). Allow small
	// slack for the input-cap shift of the swapped cells.
	s1 := tr.ComputeTiming(modes[0]).Skew(tr)
	s2 := tr.ComputeTiming(modes[1]).Skew(tr)
	if math.Abs(s1-3) > 0.5 || math.Abs(s2-4) > 0.5 {
		t.Fatalf("realized skews %g/%g, want ≈3/4", s1, s2)
	}
}
