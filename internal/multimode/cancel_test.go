package multimode

import (
	"context"
	"errors"
	"testing"
)

func TestOptimizeCanceled(t *testing.T) {
	tree, modes, lib := violatingTree(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Optimize(ctx, tree, modes, mmConfig(lib, true)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
