package variation

import (
	"context"
	"errors"
	"testing"
)

func TestMonteCarloCanceled(t *testing.T) {
	tree := testTree(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MonteCarlo(ctx, tree, Params{Sigma: 0.05, N: 10, Kappa: 20, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
