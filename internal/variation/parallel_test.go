package variation

import (
	"context"
	"runtime"
	"testing"
)

// TestParallelDeterminismMonteCarlo requires bitwise-identical statistics
// from MonteCarlo under every worker count: each instance draws from its
// own (Seed, index)-derived RNG and results merge in index order.
func TestParallelDeterminismMonteCarlo(t *testing.T) {
	tree := testTree(t)
	p := Params{Sigma: 0.05, N: 60, Kappa: 20, Seed: 7, Correlation: 0.5, Workers: 1}
	want, err := MonteCarlo(context.Background(), tree, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		p.Workers = w
		got, err := MonteCarlo(context.Background(), tree, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if *got != *want {
			t.Fatalf("workers=%d: stats differ:\n got %+v\nwant %+v", w, *got, *want)
		}
	}
}
