// Package variation runs the paper's Monte Carlo process-variation study
// (§VII-D): wire widths/lengths, buffer/inverter widths and threshold
// voltages are randomized as Gaussians N(µ, (σ/µ·µ)²) around their
// nominal values, and each randomized instance is re-evaluated for clock
// skew (yield against κ) and peak current / rail noise (normalized
// standard deviations σ̂/µ̂).
package variation

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"wavemin/internal/clocktree"
	"wavemin/internal/obs"
	"wavemin/internal/parallel"
	"wavemin/internal/powergrid"
)

// Params configures a Monte Carlo run.
type Params struct {
	Sigma float64 // relative σ (paper: 0.05)
	N     int     // instances (paper: 1000)
	Kappa float64 // skew bound for yield, ps (paper: 100)
	Seed  int64
	// Correlation in [0,1] splits the variation into a die-wide
	// (correlated) component and a per-device (random) component:
	// σ_global = Correlation·σ, σ_local = (1−Correlation)·σ. Correlated
	// variation shifts every path together and barely moves skew; the
	// local remainder drives mismatch. 0 = fully independent devices.
	Correlation float64
	// Grid, when non-nil, additionally measures VDD/Gnd noise per
	// instance (markedly slower: two transient solves each).
	Grid *powergrid.Grid
	Mode clocktree.Mode // zero value = nominal
	// Workers bounds the goroutines evaluating instances. Each instance
	// gets its own RNG seeded deterministically from (Seed, index), so the
	// statistics are bitwise identical for every worker count. 0 =
	// GOMAXPROCS, 1 = serial.
	Workers int
}

// Stats aggregates a run.
type Stats struct {
	N         int
	YieldOK   int     // instances meeting κ
	Yield     float64 // fraction
	MeanSkew  float64
	MeanPeak  float64 // µA
	NormSDev  float64 // σ̂/µ̂ of peak current
	MeanVDD   float64 // volts, 0 when Grid nil
	NormVDD   float64
	MeanGnd   float64
	NormGnd   float64
	WorstSkew float64
}

// drawState holds one instance's shared process-corner draws. Both
// perturbation paths (the one-shot Perturb and the reusable Scratch) fold
// it in the exact same RNG order, so they are bitwise interchangeable.
type drawState struct {
	sLocal                  float64
	gWire, gDelay, gCurrent float64
}

func newDrawState(sigma, correlation float64, rng *rand.Rand) drawState {
	if correlation < 0 {
		correlation = 0
	}
	if correlation > 1 {
		correlation = 1
	}
	sGlobal := sigma * correlation
	// One shared draw per physical quantity (the process corner of this
	// die), plus an independent draw per device (see draw).
	return drawState{
		sLocal:   sigma * (1 - correlation),
		gWire:    1 + sGlobal*clampN(rng.NormFloat64()),
		gDelay:   1 + sGlobal*clampN(rng.NormFloat64()),
		gCurrent: 1 + sGlobal*clampN(rng.NormFloat64()),
	}
}

func (d drawState) draw(global float64, rng *rand.Rand) float64 {
	f := global * (1 + d.sLocal*clampN(rng.NormFloat64()))
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// Perturb returns a randomized clone of the tree: every wire's R and C and
// every node's delay/current scale drawn from N(1, σ²) (clamped at ±4σ to
// avoid nonphysical negatives). Correlation ∈ [0,1] makes that fraction of
// σ a die-wide shared draw (process corner) with the remainder per-device.
//
// Perturb allocates a fresh clone per call; hot loops that evaluate many
// instances of one tree should hold a Scratch instead.
func Perturb(t *clocktree.Tree, sigma, correlation float64, rng *rand.Rand) *clocktree.Tree {
	cp := t.Clone()
	ds := newDrawState(sigma, correlation, rng)
	cp.Walk(func(n *clocktree.Node) {
		n.WireRes *= ds.draw(ds.gWire, rng)
		n.WireCap *= ds.draw(ds.gWire, rng)
		n.DelayScale = ds.draw(ds.gDelay, rng)
		n.CurrentScale = ds.draw(ds.gCurrent, rng)
	})
	return cp
}

// Scratch is a reusable perturbation buffer for one tree shape: a private
// working clone plus the nominal parasitics needed to rewind it between
// draws. Perturb's per-instance clone dominates the Monte Carlo allocation
// profile (the same lesson as the MOSP arenas); a Scratch amortizes that
// clone across every instance a worker evaluates. The draw sequence
// matches Perturb exactly, so swapping one for the other never changes a
// statistic. Not safe for concurrent use — pool one per goroutine.
type Scratch struct {
	work             *clocktree.Tree
	nodes            []*clocktree.Node // work's nodes in preorder
	wireRes, wireCap []float64         // nominal parasitics, same order
}

// NewScratch builds a scratch buffer seeded with t's nominal values.
func NewScratch(t *clocktree.Tree) *Scratch {
	s := &Scratch{work: t.Clone()}
	s.work.Walk(func(n *clocktree.Node) {
		s.nodes = append(s.nodes, n)
		s.wireRes = append(s.wireRes, n.WireRes)
		s.wireCap = append(s.wireCap, n.WireCap)
	})
	return s
}

// Perturb redraws the working tree in place and returns it. The returned
// tree is only valid until the next Perturb on the same Scratch.
func (s *Scratch) Perturb(sigma, correlation float64, rng *rand.Rand) *clocktree.Tree {
	ds := newDrawState(sigma, correlation, rng)
	for i, n := range s.nodes {
		n.WireRes = s.wireRes[i] * ds.draw(ds.gWire, rng)
		n.WireCap = s.wireCap[i] * ds.draw(ds.gWire, rng)
		n.DelayScale = ds.draw(ds.gDelay, rng)
		n.CurrentScale = ds.draw(ds.gCurrent, rng)
	}
	return s.work
}

func clampN(x float64) float64 {
	if x > 4 {
		return 4
	}
	if x < -4 {
		return -4
	}
	return x
}

// MonteCarlo evaluates N randomized instances of the tree.
func MonteCarlo(ctx context.Context, t *clocktree.Tree, p Params) (*Stats, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("variation: non-positive N")
	}
	if p.Sigma < 0 {
		return nil, fmt.Errorf("variation: negative sigma")
	}
	if p.Kappa <= 0 {
		return nil, fmt.Errorf("variation: non-positive kappa")
	}
	mode := p.Mode
	if mode.Name == "" {
		mode = clocktree.NominalMode
	}
	// One span for the whole sweep; per-instance spans would dominate the
	// trace without adding signal (every instance is the same shape).
	ctx, sp := obs.Start(ctx, "variation.mc")
	defer sp.End()
	sp.Count("variation.instances", int64(p.N))
	// Each instance draws from its own RNG, seeded from (Seed, index), so
	// instance i sees the same randomness whether it runs on goroutine 3
	// of 8 or in the plain serial loop — the ordered merge below then
	// makes the whole run bitwise deterministic for any worker count.
	type instResult struct {
		skew, peak, vdd, gnd float64
	}
	results := make([]instResult, p.N)
	// parallel.ForEach exposes no worker index, so per-worker scratch
	// reuse rides a sync.Pool: each goroutine checks a Scratch out for
	// the duration of one instance, and steady state settles at one
	// buffer per live worker instead of one tree clone per instance.
	scratch := sync.Pool{New: func() any { return NewScratch(t) }}
	ferr := parallel.ForEach(ctx, p.Workers, p.N, func(i int) error {
		rng := rand.New(rand.NewSource(instanceSeed(p.Seed, i)))
		sc := scratch.Get().(*Scratch)
		defer scratch.Put(sc)
		inst := sc.Perturb(p.Sigma, p.Correlation, rng)
		tm := inst.ComputeTiming(mode)
		r := instResult{skew: tm.Skew(inst), peak: inst.PeakCurrent(tm)}
		if p.Grid != nil {
			v, g, err := p.Grid.MeasureTreeNoise(ctx, inst, tm)
			if err != nil {
				return fmt.Errorf("variation: instance %d noise: %w", i, err)
			}
			r.vdd, r.gnd = v, g
		}
		results[i] = r
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	st := &Stats{N: p.N}
	peaks := make([]float64, 0, p.N)
	var vdds, gnds []float64
	for _, r := range results {
		if r.skew <= p.Kappa {
			st.YieldOK++
		}
		if r.skew > st.WorstSkew {
			st.WorstSkew = r.skew
		}
		st.MeanSkew += r.skew
		peaks = append(peaks, r.peak)
		if p.Grid != nil {
			vdds = append(vdds, r.vdd)
			gnds = append(gnds, r.gnd)
		}
	}
	st.MeanSkew /= float64(p.N)
	st.Yield = float64(st.YieldOK) / float64(p.N)
	st.MeanPeak, st.NormSDev = meanNorm(peaks)
	if p.Grid != nil {
		st.MeanVDD, st.NormVDD = meanNorm(vdds)
		st.MeanGnd, st.NormGnd = meanNorm(gnds)
	}
	if sp != nil {
		sp.Count("variation.yield_ok", int64(st.YieldOK))
		sp.Gauge("variation.mean_peak", st.MeanPeak)
		sp.Gauge("variation.norm_sdev", st.NormSDev)
	}
	return st, nil
}

// InstanceSeed derives instance i's RNG seed from the run seed — the
// exported handle internal/yield uses to give every Monte Carlo sample a
// chunking-independent seed.
func InstanceSeed(seed int64, i int) int64 { return instanceSeed(seed, i) }

// instanceSeed derives instance i's RNG seed from the run seed with a
// splitmix64-style mix, so nearby (seed, i) pairs decorrelate fully.
func instanceSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// meanNorm returns the mean and the normalized standard deviation σ̂/µ̂
// (the paper's per-circuit normalization).
func meanNorm(xs []float64) (mean, norm float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(len(xs))) / mean
}
