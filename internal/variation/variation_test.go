package variation

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
	"wavemin/internal/powergrid"
)

func testTree(t testing.TB) *clocktree.Tree {
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < 12; i++ {
		sinks = append(sinks, cts.Sink{X: float64(10 + i*12), Y: float64(10 + (i%4)*30), Cap: 8})
	}
	tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPerturbZeroSigmaIsIdentity(t *testing.T) {
	tree := testTree(t)
	rng := rand.New(rand.NewSource(1))
	cp := Perturb(tree, 0, 0, rng)
	tm0 := tree.ComputeTiming(clocktree.NominalMode)
	tm1 := cp.ComputeTiming(clocktree.NominalMode)
	for id := range tm0.ATOut {
		if math.Abs(tm0.ATOut[id]-tm1.ATOut[id]) > 1e-12 {
			t.Fatalf("zero-sigma perturbation moved node %d", id)
		}
	}
	if math.Abs(tree.PeakCurrent(tm0)-cp.PeakCurrent(tm1)) > 1e-9 {
		t.Fatal("zero-sigma perturbation changed peak")
	}
}

func TestPerturbDoesNotTouchOriginal(t *testing.T) {
	tree := testTree(t)
	before := tree.ComputeTiming(clocktree.NominalMode).Skew(tree)
	_ = Perturb(tree, 0.2, 0.5, rand.New(rand.NewSource(2)))
	after := tree.ComputeTiming(clocktree.NominalMode).Skew(tree)
	if before != after {
		t.Fatal("Perturb mutated the original tree")
	}
}

func TestMonteCarloDeterministicWithSeed(t *testing.T) {
	tree := testTree(t)
	p := Params{Sigma: 0.05, N: 40, Kappa: 20, Seed: 7}
	a, err := MonteCarlo(context.Background(), tree, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(context.Background(), tree, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Yield != b.Yield || a.MeanPeak != b.MeanPeak || a.NormSDev != b.NormSDev {
		t.Fatal("same seed gave different stats")
	}
}

func TestMonteCarloYieldDropsWithSigma(t *testing.T) {
	tree := testTree(t)
	// κ barely above nominal skew so variation causes misses.
	nominal := tree.ComputeTiming(clocktree.NominalMode).Skew(tree)
	kappa := nominal + 3
	low, err := MonteCarlo(context.Background(), tree, Params{Sigma: 0.01, N: 120, Kappa: kappa, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	high, err := MonteCarlo(context.Background(), tree, Params{Sigma: 0.15, N: 120, Kappa: kappa, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if high.Yield >= low.Yield {
		t.Fatalf("yield should drop with sigma: %g → %g", low.Yield, high.Yield)
	}
	if high.NormSDev <= low.NormSDev {
		t.Fatalf("peak spread should grow with sigma: %g → %g", low.NormSDev, high.NormSDev)
	}
}

func TestMonteCarloWithGridNoise(t *testing.T) {
	tree := testTree(t)
	grid, err := powergrid.New(160, 120, powergrid.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := MonteCarlo(context.Background(), tree, Params{Sigma: 0.05, N: 5, Kappa: 20, Seed: 1, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanVDD <= 0 || st.MeanGnd <= 0 {
		t.Fatalf("grid noise not measured: %g/%g", st.MeanVDD, st.MeanGnd)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	tree := testTree(t)
	if _, err := MonteCarlo(context.Background(), tree, Params{Sigma: 0.05, N: 0, Kappa: 10}); err == nil {
		t.Error("zero N should error")
	}
	if _, err := MonteCarlo(context.Background(), tree, Params{Sigma: -1, N: 5, Kappa: 10}); err == nil {
		t.Error("negative sigma should error")
	}
	if _, err := MonteCarlo(context.Background(), tree, Params{Sigma: 0.05, N: 5, Kappa: 0}); err == nil {
		t.Error("zero kappa should error")
	}
}

func TestMeanNorm(t *testing.T) {
	m, n := meanNorm([]float64{10, 10, 10})
	if m != 10 || n != 0 {
		t.Fatalf("constant data: mean %g norm %g", m, n)
	}
	m, n = meanNorm([]float64{9, 11})
	if math.Abs(m-10) > 1e-12 || math.Abs(n-0.1) > 1e-12 {
		t.Fatalf("mean %g norm %g, want 10/0.1", m, n)
	}
	if m, n := meanNorm(nil); m != 0 || n != 0 {
		t.Fatal("empty data should be zeros")
	}
}

func TestCorrelatedVariationNarrowsSkewSpread(t *testing.T) {
	tree := testTree(t)
	nominal := tree.ComputeTiming(clocktree.NominalMode).Skew(tree)
	kappa := nominal + 4
	indep, err := MonteCarlo(context.Background(), tree, Params{Sigma: 0.08, Correlation: 0, N: 150, Kappa: kappa, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	corr, err := MonteCarlo(context.Background(), tree, Params{Sigma: 0.08, Correlation: 0.8, N: 150, Kappa: kappa, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Die-wide variation moves every path together: mean skew (and hence
	// misses) must shrink, while the peak spread stays (currents scale
	// with the corner).
	if corr.MeanSkew >= indep.MeanSkew {
		t.Fatalf("correlated mean skew %g should be below independent %g", corr.MeanSkew, indep.MeanSkew)
	}
	if corr.Yield < indep.Yield {
		t.Fatalf("correlated yield %g should be at least independent %g", corr.Yield, indep.Yield)
	}
	if corr.NormSDev < 0.5*indep.NormSDev {
		t.Fatalf("peak spread should survive correlation: %g vs %g", corr.NormSDev, indep.NormSDev)
	}
}

// TestScratchPerturbMatchesPerturb pins the hot-path rewrite: the
// scratch-tree in-place redraw must reproduce the clone-based Perturb
// exactly (same draws in the same order, same parasitics), or MonteCarlo
// and yield chunks would change bytes.
func TestScratchPerturbMatchesPerturb(t *testing.T) {
	tree := testTree(t)
	sc := NewScratch(tree)
	for seed := int64(1); seed <= 20; seed++ {
		want := Perturb(tree, 0.08, 0.4, rand.New(rand.NewSource(seed)))
		got := sc.Perturb(0.08, 0.4, rand.New(rand.NewSource(seed)))
		wtm := want.ComputeTiming(clocktree.NominalMode)
		gtm := got.ComputeTiming(clocktree.NominalMode)
		if ws, gs := wtm.Skew(want), gtm.Skew(got); ws != gs {
			t.Fatalf("seed %d: scratch skew %v != clone skew %v", seed, gs, ws)
		}
		if wp, gp := want.PeakCurrent(wtm), got.PeakCurrent(gtm); wp != gp {
			t.Fatalf("seed %d: scratch peak %v != clone peak %v", seed, gp, wp)
		}
	}
}

// TestScratchReusableAcrossDraws checks that reusing one Scratch does not
// leak state between draws: redrawing with the same seed after a
// different draw reproduces the first result.
func TestScratchReusableAcrossDraws(t *testing.T) {
	tree := testTree(t)
	sc := NewScratch(tree)
	first := sc.Perturb(0.1, 0.2, rand.New(rand.NewSource(3)))
	s1 := first.ComputeTiming(clocktree.NominalMode).Skew(first)
	mid := sc.Perturb(0.3, 0.9, rand.New(rand.NewSource(99)))
	_ = mid.ComputeTiming(clocktree.NominalMode)
	again := sc.Perturb(0.1, 0.2, rand.New(rand.NewSource(3)))
	s2 := again.ComputeTiming(clocktree.NominalMode).Skew(again)
	if s1 != s2 {
		t.Fatalf("scratch draw not reproducible after reuse: %v then %v", s1, s2)
	}
}
