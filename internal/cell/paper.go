package cell

// PaperLibrary returns the exact four-cell library of the paper's worked
// examples, Tables II and III:
//
//	Type    | VDD=0.9V        | VDD=1.1V
//	        | TD   P+   P−    | TD   P+   P−
//	BUF_X1  | 27   120  10    | 24   130  13
//	BUF_X2  | 23   234  36    | 19   255  44
//	INV_X1  | 24   10   120   | 21   13   130
//	INV_X2  | 22   36   234   | 17   44   255
//
// These cells report load-independent, table-pinned delays and peaks at
// VDD ∈ {0.9, 1.1}; the analytic model fills in waveform shapes. They are
// used by the unit tests that replay the paper's Figs. 5–6 and 9–12 and
// Table IV, where the exact numbers matter.
func PaperLibrary() *Library {
	mk := func(name string, kind Kind, x float64, t09, t11 TablePoint) *Cell {
		base := makeBuf(x)
		if kind == Inv {
			base = makeInv(x)
		}
		c := *base
		c.Name = name
		c.Table = map[float64]TablePoint{0.9: t09, 1.1: t11}
		// Uniform input caps: the paper's worked examples treat every
		// re-assignment's arrival time as delay-table-only, with no
		// upstream load shift.
		c.CinPerX = 0.5 / x
		return &c
	}
	return MustNewLibrary(
		mk("BUF_X1", Buf, 1,
			TablePoint{TD: 27, PPlus: 120, PMin: 10},
			TablePoint{TD: 24, PPlus: 130, PMin: 13}),
		mk("BUF_X2", Buf, 2,
			TablePoint{TD: 23, PPlus: 234, PMin: 36},
			TablePoint{TD: 19, PPlus: 255, PMin: 44}),
		mk("INV_X1", Inv, 1,
			TablePoint{TD: 24, PPlus: 10, PMin: 120},
			TablePoint{TD: 21, PPlus: 13, PMin: 130}),
		mk("INV_X2", Inv, 2,
			TablePoint{TD: 22, PPlus: 36, PMin: 234},
			TablePoint{TD: 17, PPlus: 44, PMin: 255}),
	)
}
