package cell

import (
	"math"
	"testing"
)

func TestSpiceCharacterizeInverterBasics(t *testing.T) {
	c := DefaultLibrary().MustByName("INV_X8")
	p, err := SpiceCharacterize(c, Rising, 6, 1.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Rising input → inverter output falls: big ISS event, small IDD
	// (crowbar only).
	if p.PeakISS() <= p.PeakIDD() {
		t.Fatalf("inverter@rise: ISS %g should exceed IDD %g", p.PeakISS(), p.PeakIDD())
	}
	if p.TD <= 0 || p.TD > 100 {
		t.Fatalf("implausible TD %g", p.TD)
	}
	// Output must settle near ground.
	if v := p.Out.At(p.Out.Last()); v > 0.1 {
		t.Fatalf("output did not discharge: %g V", v)
	}
}

func TestSpiceCharacterizeInverterFallingEdge(t *testing.T) {
	c := DefaultLibrary().MustByName("INV_X8")
	p, err := SpiceCharacterize(c, Falling, 6, 1.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Falling input → output charges: big IDD event.
	if p.PeakIDD() <= p.PeakISS() {
		t.Fatalf("inverter@fall: IDD %g should exceed ISS %g", p.PeakIDD(), p.PeakISS())
	}
	if v := p.Out.At(p.Out.Last()); v < 1.0 {
		t.Fatalf("output did not charge: %g V", v)
	}
}

func TestSpiceCharacterizeBufferTwoStage(t *testing.T) {
	c := DefaultLibrary().MustByName("BUF_X8")
	p, err := SpiceCharacterize(c, Rising, 6, 1.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Buffer at rising edge: output rises → IDD dominates, but the first
	// stage discharges → nonzero ISS too.
	if p.PeakIDD() <= p.PeakISS() {
		t.Fatalf("buffer@rise: IDD %g should exceed ISS %g", p.PeakIDD(), p.PeakISS())
	}
	if p.PeakISS() <= 0 {
		t.Fatal("first-stage ISS event missing")
	}
	if v := p.Out.At(p.Out.Last()); v < 1.0 {
		t.Fatalf("buffer output did not charge: %g V", v)
	}
}

// The headline cross-validation: the closed-form analytic model the
// optimizer uses must agree with the transistor-level simulation on
// delay and peak magnitude within modeling tolerance, across cells,
// loads, and supplies.
func TestAnalyticModelMatchesSpiceLevel(t *testing.T) {
	lib := DefaultLibrary()
	for _, name := range []string{"INV_X4", "INV_X8", "INV_X16", "BUF_X8"} {
		c := lib.MustByName(name)
		for _, load := range []float64{4, 10} {
			for _, vdd := range []float64{0.9, 1.1} {
				p, err := SpiceCharacterize(c, Rising, load, vdd, 20)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				// Delay within 2.5× either way (linearized switches vs
				// closed-form Elmore constants).
				analytic := c.Delay(load, vdd)
				if p.TD > 2.5*analytic || analytic > 2.5*p.TD {
					t.Errorf("%s load=%g vdd=%g: spice TD %.1f vs analytic %.1f",
						name, load, vdd, p.TD, analytic)
				}
				// Dominant-rail peak within 3× either way.
				var spicePeak, modelPeak float64
				if c.Inverting() {
					spicePeak = p.PeakISS()
					modelPeak = c.PeakMinus(load, vdd) // = ISS@rise by rail symmetry
				} else {
					spicePeak = p.PeakIDD()
					modelPeak = c.PeakPlus(load, vdd)
				}
				if spicePeak > 3*modelPeak || modelPeak > 3*spicePeak {
					t.Errorf("%s load=%g vdd=%g: spice peak %.0f vs analytic %.0f",
						name, load, vdd, spicePeak, modelPeak)
				}
			}
		}
	}
}

func TestSpiceLevelShowsCrowbar(t *testing.T) {
	// During the input transition both devices conduct briefly: the quiet
	// rail must see a nonzero blip.
	c := DefaultLibrary().MustByName("INV_X16")
	p, err := SpiceCharacterize(c, Rising, 6, 1.1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if p.PeakIDD() <= 0 {
		t.Fatal("no crowbar current on the quiet rail")
	}
	// But it stays well below the main event.
	if p.PeakIDD() > 0.8*p.PeakISS() {
		t.Fatalf("crowbar %g implausibly close to main %g", p.PeakIDD(), p.PeakISS())
	}
}

func TestSpiceLevelChargeConservation(t *testing.T) {
	// The charge delivered by VDD when the output charges must equal
	// C·VDD within integration tolerance.
	c := DefaultLibrary().MustByName("INV_X8")
	load := 10.0
	p, err := SpiceCharacterize(c, Falling, load, 1.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	got := p.IDD.Clip(spiceEdgeAt-1, p.IDD.Last()).Charge()
	want := 1000 * (load + c.CparPerX*c.Drive) * 1.1 // µA·ps
	if math.Abs(got-want) > 0.4*want {
		t.Fatalf("delivered charge %g vs C·V %g", got, want)
	}
}

func TestSpiceCharacterizeValidation(t *testing.T) {
	c := DefaultLibrary().MustByName("INV_X8")
	if _, err := SpiceCharacterize(c, Rising, -1, 1.1, 20); err == nil {
		t.Error("negative load should error")
	}
	if _, err := SpiceCharacterize(c, Rising, 4, 0, 20); err == nil {
		t.Error("zero vdd should error")
	}
	if _, err := SpiceCharacterize(c, Rising, 4, 1.1, 0); err == nil {
		t.Error("zero slew should error")
	}
}

func TestSpiceLevelVDDTrend(t *testing.T) {
	// Lower supply → slower and weaker, like the analytic model and the
	// paper's Table III.
	c := DefaultLibrary().MustByName("INV_X8")
	hi, err := SpiceCharacterize(c, Rising, 6, 1.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := SpiceCharacterize(c, Rising, 6, 0.9, 20)
	if err != nil {
		t.Fatal(err)
	}
	if lo.TD <= hi.TD {
		t.Fatalf("0.9 V should be slower: %g vs %g", lo.TD, hi.TD)
	}
	if lo.PeakISS() >= hi.PeakISS() {
		t.Fatalf("0.9 V should peak lower: %g vs %g", lo.PeakISS(), hi.PeakISS())
	}
}
