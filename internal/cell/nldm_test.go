package cell

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testGrid() ([]float64, []float64) {
	return []float64{10, 20, 40, 80}, []float64{2, 4, 8, 16, 32}
}

func TestNLDMValidate(t *testing.T) {
	good := NLDM{Slews: []float64{1, 2}, Loads: []float64{1}, Values: [][]float64{{1}, {2}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []NLDM{
		{},
		{Slews: []float64{2, 1}, Loads: []float64{1}, Values: [][]float64{{1}, {2}}},
		{Slews: []float64{1, 2}, Loads: []float64{1}, Values: [][]float64{{1}}},
		{Slews: []float64{1, 2}, Loads: []float64{1}, Values: [][]float64{{1, 9}, {2, 9}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNLDMInterpolation(t *testing.T) {
	tbl := NLDM{
		Slews:  []float64{0, 10},
		Loads:  []float64{0, 10},
		Values: [][]float64{{0, 10}, {20, 30}},
	}
	cases := []struct{ s, l, want float64 }{
		{0, 0, 0}, {0, 10, 10}, {10, 0, 20}, {10, 10, 30},
		{5, 5, 15}, // center
		{0, 5, 5},  // edge midpoints
		{5, 0, 10},
		{-5, -5, 0},  // clamped low
		{99, 99, 30}, // clamped high
		{0, 7.5, 7.5},
	}
	for _, c := range cases {
		if got := tbl.At(c.s, c.l); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g,%g) = %g, want %g", c.s, c.l, got, c.want)
		}
	}
}

func TestNLDMExactOnGridPoints(t *testing.T) {
	slews, loads := testGrid()
	c := DefaultLibrary().MustByName("BUF_X8")
	ct, err := BuildTables(c, 1.1, slews, loads)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slews {
		for _, l := range loads {
			if got, want := ct.Delay.At(s, l), c.Delay(l, 1.1); math.Abs(got-want) > 1e-9 {
				t.Fatalf("delay grid point (%g,%g): %g vs %g", s, l, got, want)
			}
			idd, _ := c.Currents(Rising, l, 1.1, s)
			want, _ := idd.Peak()
			if got := ct.PeakPlus.At(s, l); math.Abs(got-want) > 1e-9 {
				t.Fatalf("P+ grid point (%g,%g): %g vs %g", s, l, got, want)
			}
		}
	}
}

func TestNLDMInterpolatesBetweenGridPoints(t *testing.T) {
	slews, loads := testGrid()
	c := DefaultLibrary().MustByName("INV_X8")
	ct, err := BuildTables(c, 1.1, slews, loads)
	if err != nil {
		t.Fatal(err)
	}
	// Delay is linear in load in the analytic model, so interpolation is
	// exact between load grid points.
	got := ct.Delay.At(20, 6)
	want := c.Delay(6, 1.1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("linear quantity should interpolate exactly: %g vs %g", got, want)
	}
	// Peaks are nonlinear (1/width); interpolation within a few percent.
	idd, _ := c.Currents(Falling, 6, 1.1, 20)
	truePeak, _ := idd.Peak()
	gotPeak := ct.PeakMinus.At(20, 6)
	if math.Abs(gotPeak-truePeak) > 0.1*truePeak {
		t.Fatalf("peak interpolation off: %g vs %g", gotPeak, truePeak)
	}
}

func TestBuildTablesValidation(t *testing.T) {
	c := DefaultLibrary().MustByName("BUF_X8")
	if _, err := BuildTables(c, 1.1, nil, []float64{1}); err == nil {
		t.Fatal("empty slews should error")
	}
}

// Property: At is monotone along each axis when the table values are
// monotone (delay grows with load).
func TestPropertyNLDMMonotoneInLoad(t *testing.T) {
	slews, loads := testGrid()
	c := DefaultLibrary().MustByName("BUF_X4")
	ct, err := BuildTables(c, 1.1, slews, loads)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := rng.Float64() * 90
		l1 := rng.Float64() * 30
		l2 := l1 + rng.Float64()*5
		return ct.Delay.At(s, l1) <= ct.Delay.At(s, l2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
