package cell

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func buildTestTables(t *testing.T) []CellTables {
	t.Helper()
	slews, loads := testGrid()
	lib := SizingLibrary()
	var out []CellTables
	for _, c := range lib.Cells() {
		ct, err := BuildTables(c, 1.1, slews, loads)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ct)
	}
	return out
}

func TestLibertyRoundTrip(t *testing.T) {
	tables := buildTestTables(t)
	var buf bytes.Buffer
	if err := WriteLiberty(&buf, "wavemin_45nm", 1.1, tables); err != nil {
		t.Fatal(err)
	}
	name, vdd, parsed, err := ParseLiberty(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "wavemin_45nm" || vdd != 1.1 {
		t.Fatalf("header round-trip: %q %g", name, vdd)
	}
	if len(parsed) != len(tables) {
		t.Fatalf("%d cells parsed, want %d", len(parsed), len(tables))
	}
	for i := range tables {
		a, b := &tables[i], &parsed[i]
		if a.Cell != b.Cell {
			t.Fatalf("cell %d name %q vs %q", i, a.Cell, b.Cell)
		}
		for _, pair := range [][2]*NLDM{
			{&a.Delay, &b.Delay}, {&a.OutSlew, &b.OutSlew},
			{&a.PeakPlus, &b.PeakPlus}, {&a.PeakMinus, &b.PeakMinus},
		} {
			if !nldmEqual(pair[0], pair[1]) {
				t.Fatalf("cell %s: table mismatch after round trip", a.Cell)
			}
		}
	}
}

func nldmEqual(a, b *NLDM) bool {
	if len(a.Slews) != len(b.Slews) || len(a.Loads) != len(b.Loads) {
		return false
	}
	for i := range a.Slews {
		if math.Abs(a.Slews[i]-b.Slews[i]) > 1e-9 {
			return false
		}
	}
	for i := range a.Loads {
		if math.Abs(a.Loads[i]-b.Loads[i]) > 1e-9 {
			return false
		}
	}
	for i := range a.Values {
		for j := range a.Values[i] {
			if math.Abs(a.Values[i][j]-b.Values[i][j]) > 1e-6*math.Max(1, a.Values[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestLibertyOutputLooksLikeLiberty(t *testing.T) {
	tables := buildTestTables(t)
	var buf bytes.Buffer
	if err := WriteLiberty(&buf, "lib", 1.1, tables[:1]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"library (lib) {", "time_unit : \"1ps\";", "cell (BUF_X16) {",
		"table (delay) {", "index_1 (", "index_2 (", "values (",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out[:400])
		}
	}
}

func TestParseLibertyErrors(t *testing.T) {
	cases := []string{
		"",                                 // empty
		"cell (X) {\n}",                    // cell before library... accepted? table outside cell is the guard
		"library (l) {\n  voltage : x;\n}", // bad voltage
		"library (l) {\n  bogus line\n}",   // unexpected line
		"library (l) {\n  cell (c) {\n    table (nope) {\n      index_1 (\"1\");\n      index_2 (\"1\");\n      values (\"1\");\n    }\n  }\n}", // unknown table
		"library (l) {\n  cell (c) {\n    table (delay) {\n      index_1 (\"1, 2\");\n}",                                                        // truncated table
	}
	for i, src := range cases {
		if _, _, _, err := ParseLiberty(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestWriteLibertyValidates(t *testing.T) {
	var buf bytes.Buffer
	bad := []CellTables{{Cell: "x"}} // empty tables
	if err := WriteLiberty(&buf, "l", 1.1, bad); err == nil {
		t.Fatal("invalid tables should fail to serialize")
	}
}
