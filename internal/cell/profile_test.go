package cell

import (
	"testing"

	"wavemin/internal/waveform"
)

func TestCharacterizeConsistency(t *testing.T) {
	c := DefaultLibrary().MustByName("BUF_X8")
	p := Characterize(c, 4, 1.1)
	if p.TD != c.Delay(4, 1.1) {
		t.Fatal("profile TD disagrees with cell delay")
	}
	if p.SlewOut != c.Slew(4, 1.1) {
		t.Fatal("profile slew disagrees with cell slew")
	}
	if p.PeakPlus() <= p.PeakMinus() {
		t.Fatal("buffer profile should have P+ > P-")
	}
	// Peaks from the profile should track the closed-form peaks (profiling
	// includes the ProfileSlew widening, so allow slack).
	if p.PeakPlus() > c.PeakPlus(4, 1.1) {
		t.Fatalf("profiled P+ %g exceeds closed-form %g (slew should only flatten)",
			p.PeakPlus(), c.PeakPlus(4, 1.1))
	}
}

func TestProfileCurrentSelector(t *testing.T) {
	c := DefaultLibrary().MustByName("INV_X8")
	p := Characterize(c, 4, 1.1)
	if !equalWf(p.Current(VDD, Rising), p.IDDRise) ||
		!equalWf(p.Current(VDD, Falling), p.IDDFall) ||
		!equalWf(p.Current(Gnd, Rising), p.ISSRise) ||
		!equalWf(p.Current(Gnd, Falling), p.ISSFall) {
		t.Fatal("Current selector mismatch")
	}
	if VDD.String() != "VDD" || Gnd.String() != "Gnd" {
		t.Fatal("Rail strings wrong")
	}
}

func equalWf(a, b waveform.Waveform) bool {
	ap, bp := a.Points(), b.Points()
	if len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	return true
}

func TestProfilerMemoizes(t *testing.T) {
	pr := NewProfiler(0.5)
	c := DefaultLibrary().MustByName("BUF_X8")
	p1 := pr.Profile(c, 4.1, 1.1)
	p2 := pr.Profile(c, 4.2, 1.1) // same bucket
	if pr.Size() != 1 {
		t.Fatalf("cache size %d, want 1 (bucketing failed)", pr.Size())
	}
	if p1.TD != p2.TD {
		t.Fatal("bucketed profiles should be identical")
	}
	pr.Profile(c, 9.9, 1.1)
	if pr.Size() != 2 {
		t.Fatalf("cache size %d, want 2", pr.Size())
	}
	pr.Profile(c, 4.1, 0.9)
	if pr.Size() != 3 {
		t.Fatalf("cache size %d, want 3 (VDD must key the cache)", pr.Size())
	}
}

func TestProfilerDefaultGrid(t *testing.T) {
	pr := NewProfiler(0)
	if pr.LoadGrid <= 0 {
		t.Fatal("default grid should be positive")
	}
}
