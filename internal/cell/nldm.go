package cell

import (
	"fmt"
	"sort"
)

// NLDM is a non-linear delay-model style lookup table: a scalar quantity
// (delay, output slew, or peak current) tabulated over input slew and
// output load, with bilinear interpolation between grid points — the same
// structure commercial .lib files use and the paper's characterization
// step populates (§IV-B: "every combination ... can be characterized to
// calculate the approximate values").
type NLDM struct {
	Slews  []float64   // index_1: input transition, ps, ascending
	Loads  []float64   // index_2: output load, fF, ascending
	Values [][]float64 // [slew index][load index]
}

// Validate checks the table's shape and index ordering.
func (t *NLDM) Validate() error {
	if len(t.Slews) == 0 || len(t.Loads) == 0 {
		return fmt.Errorf("nldm: empty axes")
	}
	if !sort.Float64sAreSorted(t.Slews) || !sort.Float64sAreSorted(t.Loads) {
		return fmt.Errorf("nldm: axes not ascending")
	}
	if len(t.Values) != len(t.Slews) {
		return fmt.Errorf("nldm: %d rows for %d slews", len(t.Values), len(t.Slews))
	}
	for i, row := range t.Values {
		if len(row) != len(t.Loads) {
			return fmt.Errorf("nldm: row %d has %d cols for %d loads", i, len(row), len(t.Loads))
		}
	}
	return nil
}

// At evaluates the table at (slew, load) with bilinear interpolation;
// queries outside the grid clamp to the boundary (no extrapolation), the
// usual safe .lib behaviour.
func (t *NLDM) At(slew, load float64) float64 {
	si, sf := locate(t.Slews, slew)
	li, lf := locate(t.Loads, load)
	v00 := t.Values[si][li]
	v01 := t.Values[si][li+1]
	v10 := t.Values[si+1][li]
	v11 := t.Values[si+1][li+1]
	return v00*(1-sf)*(1-lf) + v01*(1-sf)*lf + v10*sf*(1-lf) + v11*sf*lf
}

// locate returns the lower grid index and the interpolation fraction for x
// on a sorted axis, clamped to the grid.
func locate(axis []float64, x float64) (int, float64) {
	n := len(axis)
	if n == 1 {
		return 0, 0
	}
	if x <= axis[0] {
		return 0, 0
	}
	if x >= axis[n-1] {
		return n - 2, 1
	}
	i := sort.SearchFloat64s(axis, x)
	if axis[i] == x {
		if i == n-1 {
			return n - 2, 1
		}
		return i, 0
	}
	i--
	return i, (x - axis[i]) / (axis[i+1] - axis[i])
}

// CellTables bundles one cell's NLDM tables at one supply voltage.
type CellTables struct {
	Cell string  // cell name
	VDD  float64 // volts

	Delay     NLDM // propagation delay, ps
	OutSlew   NLDM // output transition, ps
	PeakPlus  NLDM // P+: peak IDD at rising input, µA
	PeakMinus NLDM // P−: peak IDD at falling input, µA
}

// Validate checks all four tables.
func (ct *CellTables) Validate() error {
	if ct.Cell == "" {
		return fmt.Errorf("nldm: unnamed cell tables")
	}
	for name, t := range map[string]*NLDM{
		"delay": &ct.Delay, "slew": &ct.OutSlew,
		"peak_plus": &ct.PeakPlus, "peak_minus": &ct.PeakMinus,
	} {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("cell %s %s: %w", ct.Cell, name, err)
		}
	}
	return nil
}

// BuildTables characterizes a cell over a (slew × load) grid with the
// analytic model. The tables make the characterization explicit and
// serializable (see WriteLiberty) and decouple consumers from the model.
func BuildTables(c *Cell, vdd float64, slews, loads []float64) (CellTables, error) {
	if len(slews) == 0 || len(loads) == 0 {
		return CellTables{}, fmt.Errorf("nldm: empty characterization grid")
	}
	mk := func(f func(slew, load float64) float64) NLDM {
		vals := make([][]float64, len(slews))
		for i, s := range slews {
			vals[i] = make([]float64, len(loads))
			for j, l := range loads {
				vals[i][j] = f(s, l)
			}
		}
		return NLDM{Slews: append([]float64(nil), slews...), Loads: append([]float64(nil), loads...), Values: vals}
	}
	ct := CellTables{
		Cell: c.Name, VDD: vdd,
		// Delay and slew are slew-in independent in the analytic model;
		// the peak pulses flatten with slower input edges (cf. Currents).
		Delay:   mk(func(_, l float64) float64 { return c.Delay(l, vdd) }),
		OutSlew: mk(func(_, l float64) float64 { return c.Slew(l, vdd) }),
		PeakPlus: mk(func(s, l float64) float64 {
			idd, _ := c.Currents(Rising, l, vdd, s)
			p, _ := idd.Peak()
			return p
		}),
		PeakMinus: mk(func(s, l float64) float64 {
			idd, _ := c.Currents(Falling, l, vdd, s)
			p, _ := idd.Peak()
			return p
		}),
	}
	return ct, ct.Validate()
}
