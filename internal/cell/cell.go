// Package cell models the clock buffering elements of the WaveMin flow: the
// buffer library B, the inverter library I, and the delay-adjustable cells
// (ADB and the paper's proposed ADI).
//
// The paper characterizes cells with HSPICE on the Nangate 45 nm library
// (Fig. 7): apply a clock pulse, record the IDD/ISS supply-current
// waveforms, the propagation delay T_D, and the output slew, at each supply
// voltage of interest. We substitute an analytic behavioural model with the
// same observable surface — load- and VDD-dependent delay and slew, and
// triangular supply-current pulses whose areas equal the switched charge —
// calibrated to the magnitudes of the paper's Tables I–III. The exact
// worked-example numbers of Tables II/III are available separately via
// PaperLibrary for unit tests of the algorithm mechanics.
//
// Conventions: time ps, capacitance fF, resistance kΩ (so R·C is ps),
// current µA (I = 1000·C·V/t with C in fF, V in volts, t in ps).
package cell

import (
	"fmt"
	"math"

	"wavemin/internal/waveform"
)

// Kind classifies a buffering element.
type Kind int

const (
	// Buf is a plain clock buffer: non-inverting, positive polarity.
	Buf Kind = iota
	// Inv is a clock inverter: inverting, negative polarity.
	Inv
	// ADB is an adjustable delay buffer: non-inverting, per-mode delay steps.
	ADB
	// ADI is an adjustable delay inverter (the paper's new cell, Fig. 4):
	// inverting, per-mode delay steps, longer base delay than ADB because of
	// its extra inverter stage.
	ADI
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Buf:
		return "BUF"
	case Inv:
		return "INV"
	case ADB:
		return "ADB"
	case ADI:
		return "ADI"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Edge is a clock transition direction at a cell input.
type Edge int

const (
	Rising Edge = iota
	Falling
)

// String implements fmt.Stringer.
func (e Edge) String() string {
	if e == Rising {
		return "rise"
	}
	return "fall"
}

// Opposite returns the other edge. An inverting cell presents the opposite
// edge to its fanout.
func (e Edge) Opposite() Edge {
	if e == Rising {
		return Falling
	}
	return Rising
}

// Cell describes one library element type. Cells are immutable after
// construction; per-instance state (e.g. an ADB's per-mode delay setting)
// lives on the clock tree node that instantiates the cell.
type Cell struct {
	Name  string
	Kind  Kind
	Drive float64 // drive strength multiplier (the X in BUF_X4)

	// Analytic model parameters. When Table is non-nil these are ignored
	// for delay/peak queries at the characterized points.
	CinPerX   float64 // input capacitance per unit drive, fF
	RoutUnit  float64 // unit-drive output resistance, kΩ
	CparPerX  float64 // output parasitic capacitance per unit drive, fF
	Intrinsic float64 // intrinsic (unloaded) delay at VDDRef, ps
	CrowbarFr float64 // short-circuit current fraction on the quiet rail

	// Delay-adjustable cells only.
	StepPs   float64 // delay increment per capacitor-bank step, ps
	MaxSteps int     // number of capacitor-bank steps

	// Table, when non-nil, pins characterization to fixed values (the
	// paper's Tables II/III worked examples) instead of the analytic model.
	Table map[float64]TablePoint // keyed by VDD
}

// TablePoint is a fixed characterization row: propagation delay and the
// IDD peaks at the rising (P+) and falling (P−) input edges, exactly as in
// the paper's Tables II and III.
type TablePoint struct {
	TD    float64 // ps
	PPlus float64 // µA, peak IDD at rising input edge
	PMin  float64 // µA, peak IDD at falling input edge
}

// VDDRef is the nominal supply the analytic model is calibrated at, volts.
const VDDRef = 1.1

// Inverting reports whether the cell flips polarity.
func (c *Cell) Inverting() bool { return c.Kind == Inv || c.Kind == ADI }

// Adjustable reports whether the cell has a capacitor-bank delay line.
func (c *Cell) Adjustable() bool { return c.Kind == ADB || c.Kind == ADI }

// MaxAdjust returns the largest extra delay the cell's capacitor bank can
// add, in ps. Zero for non-adjustable cells.
func (c *Cell) MaxAdjust() float64 { return float64(c.MaxSteps) * c.StepPs }

// InputCap returns the input capacitance in fF.
func (c *Cell) InputCap() float64 { return c.CinPerX * c.Drive }

// OutputRes returns the output resistance in kΩ.
func (c *Cell) OutputRes() float64 { return c.RoutUnit / c.Drive }

// vddDelayFactor scales delay with supply voltage: lower VDD, slower cell.
// Calibrated so 1.1 V → 0.9 V slows a cell by ≈12–13 %, matching the ratio
// between the paper's Tables II and III.
func vddDelayFactor(vdd float64) float64 {
	return math.Pow(VDDRef/vdd, 0.6)
}

// vddCurrentFactor scales peak currents with supply voltage: lower VDD,
// lower peaks (Table III vs Table II: ≈8 % down at 0.9 V).
func vddCurrentFactor(vdd float64) float64 {
	return math.Pow(vdd/VDDRef, 0.4)
}

// Delay returns the propagation delay in ps when driving load fF at the
// given supply. Adjustable cells report their base delay; add the bank
// setting separately. For Table-pinned cells the characterized T_D at the
// exact VDD is returned when available (load-independent, as in the paper's
// worked examples).
func (c *Cell) Delay(load, vdd float64) float64 {
	if c.Table != nil {
		if tp, ok := c.Table[vdd]; ok {
			return tp.TD
		}
	}
	d := c.Intrinsic + 0.69*c.OutputRes()*(load+c.CparPerX*c.Drive)
	if c.Kind == Buf || c.Kind == ADB {
		// First (quarter-sized) stage driving the output stage's input.
		s1 := math.Max(1, c.Drive/4)
		d += 0.69 * (c.RoutUnit / s1) * (c.CinPerX*c.Drive + c.CparPerX*s1)
	}
	if c.Kind == ADI {
		// Two extra minimum-size inverter stages around the capacitor bank
		// (Fig. 4) make ADIs slower than ADBs; this is why feasibility
		// pruning removes most ADIs in the paper's Table VII.
		d += 2 * (c.Intrinsic + 0.69*c.RoutUnit*c.CparPerX)
	}
	return d * vddDelayFactor(vdd)
}

// Slew returns the 20 %–80 % output transition time in ps for the given
// load and supply.
func (c *Cell) Slew(load, vdd float64) float64 {
	// ln(0.8/0.2) · R · C for a single-pole response.
	return 1.386 * c.OutputRes() * (load + c.CparPerX*c.Drive) * vddDelayFactor(vdd)
}

// switchedCharge returns the charge in µA·ps moved through the output stage
// when the output toggles: Q = C·V (1 fF·V = 1000 µA·ps).
func (c *Cell) switchedCharge(load, vdd float64) float64 {
	return 1000 * (load + c.CparPerX*c.Drive) * vdd
}

// Pull-up (PMOS) networks are weaker than pull-down (NMOS) at equal
// drawn width, so a rising output draws a wider, flatter IDD pulse than
// the ISS pulse of a falling output — the source of the IDD/ISS peak
// asymmetry visible in the paper's Table I and of Gnd noise exceeding
// VDD noise on most Table V rows.
const (
	pullUpWiden    = 1.18
	pullDownNarrow = 0.88
)

func edgeWidthFactor(outputRises bool) float64 {
	if outputRises {
		return pullUpWiden
	}
	return pullDownNarrow
}

// pulseWidth returns the duration of the output-stage current pulse, ps,
// for the given switching direction.
func (c *Cell) pulseWidth(load, vdd float64, outputRises bool) float64 {
	w := 2.2 * c.OutputRes() * (load + c.CparPerX*c.Drive) * vddDelayFactor(vdd) * edgeWidthFactor(outputRises)
	const minWidth = 2.0 // ps; even an unloaded stage draws over a finite window
	if w < minWidth {
		return minWidth
	}
	return w
}

// peakMain returns the peak of the main (output-stage) current pulse, µA.
// The triangle with area Q and width w peaks at 2Q/w; the 0.8 shape factor
// accounts for the rounded tails of a real pulse.
func (c *Cell) peakMain(load, vdd float64, outputRises bool) float64 {
	q := c.switchedCharge(load, vdd)
	w := c.pulseWidth(load, vdd, outputRises)
	return 0.8 * 2 * q / w * vddCurrentFactor(vdd)
}

// PeakPlus returns P+: the peak IDD drawn at a *rising* input edge, µA.
// Non-inverting cells charge their output at the rising edge, so P+ is the
// big pulse; inverting cells only draw crowbar current then.
func (c *Cell) PeakPlus(load, vdd float64) float64 {
	if c.Table != nil {
		if tp, ok := c.Table[vdd]; ok {
			return tp.PPlus
		}
	}
	if c.Inverting() {
		// Output falls at the rising edge; IDD sees the crowbar of the
		// pull-down event.
		return c.peakMain(load, vdd, false) * c.CrowbarFr
	}
	return c.peakMain(load, vdd, true)
}

// PeakMinus returns P−: the peak IDD drawn at a *falling* input edge, µA.
func (c *Cell) PeakMinus(load, vdd float64) float64 {
	if c.Table != nil {
		if tp, ok := c.Table[vdd]; ok {
			return tp.PMin
		}
	}
	if c.Inverting() {
		return c.peakMain(load, vdd, true) // output rises: pull-up IDD pulse
	}
	return c.peakMain(load, vdd, false) * c.CrowbarFr
}

// outputRises reports whether the output switches low→high for the given
// input edge.
func (c *Cell) outputRises(e Edge) bool {
	if c.Inverting() {
		return e == Falling
	}
	return e == Rising
}

// Currents returns the IDD and ISS waveforms drawn from the VDD and Gnd
// rails when the given input edge arrives at t = 0, for the given load,
// supply, and input slew. This is the behavioural equivalent of the
// paper's Fig. 7 characterization pulse.
//
// Shape: the output stage contributes a triangle of area Q = C·VDD on the
// rail it switches through (IDD when the output rises, ISS when it falls),
// peaking near the propagation delay. The opposite rail sees a crowbar
// triangle of CrowbarFr the height. Two-stage cells (BUF/ADB) additionally
// put their first-stage pulse — which switches the *opposite* way — on the
// other rail at roughly half the delay. Input slew widens the pulses.
func (c *Cell) Currents(e Edge, load, vdd, slewIn float64) (idd, iss waveform.Waveform) {
	if c.Table != nil {
		if tp, ok := c.Table[vdd]; ok {
			// Table-pinned cell: single triangles with exactly the
			// characterized peaks. ISS mirrors IDD across edges (rail
			// symmetry; the paper omits ISS peaks "for brevity").
			d := tp.TD
			w := c.pulseWidth(load, vdd, c.outputRises(e)) + 0.3*slewIn
			rise, fall := 0.4*w, 0.6*w
			start := d - rise
			iddPeak, issPeak := tp.PPlus, tp.PMin
			if e == Falling {
				iddPeak, issPeak = tp.PMin, tp.PPlus
			}
			return waveform.Triangle(start, rise, fall, iddPeak),
				waveform.Triangle(start, rise, fall, issPeak)
		}
	}
	outRises := c.outputRises(e)
	d := c.Delay(load, vdd)
	w := c.pulseWidth(load, vdd, outRises) + 0.3*slewIn
	peak := 0.8 * 2 * c.switchedCharge(load, vdd) / w * vddCurrentFactor(vdd)
	rise, fall := 0.4*w, 0.6*w
	start := d - rise
	main := waveform.Triangle(start, rise, fall, peak)
	crow := waveform.Triangle(start, rise, fall, peak*c.CrowbarFr)

	if outRises {
		idd, iss = main, crow
	} else {
		idd, iss = crow, main
	}

	if c.Kind == Buf || c.Kind == ADB {
		// First stage: drives the output stage's input cap the opposite
		// way (its own pull-up/pull-down asymmetry included).
		s1 := math.Max(1, c.Drive/4)
		q1 := 1000 * (c.CinPerX*c.Drive + c.CparPerX*s1) * vdd
		w1 := math.Max(2.0, 2.2*(c.RoutUnit/s1)*(c.CinPerX*c.Drive+c.CparPerX*s1)*vddDelayFactor(vdd)*edgeWidthFactor(e == Falling)) + 0.3*slewIn
		p1 := 0.8 * 2 * q1 / w1 * vddCurrentFactor(vdd)
		start1 := math.Max(0, d/2-0.4*w1)
		st1 := waveform.Triangle(start1, 0.4*w1, 0.6*w1, p1)
		// Rising input → stage-1 output falls → stage-1 draws ISS.
		if e == Rising {
			iss = waveform.Add(iss, st1)
			idd = waveform.Add(idd, st1.Scale(c.CrowbarFr))
		} else {
			idd = waveform.Add(idd, st1)
			iss = waveform.Add(iss, st1.Scale(c.CrowbarFr))
		}
	}
	return idd, iss
}

// Validate performs basic sanity checks on the model parameters.
func (c *Cell) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("cell: empty name")
	case c.Drive <= 0:
		return fmt.Errorf("cell %s: non-positive drive %g", c.Name, c.Drive)
	case c.Table == nil && (c.CinPerX <= 0 || c.RoutUnit <= 0 || c.CparPerX < 0):
		return fmt.Errorf("cell %s: bad analytic parameters", c.Name)
	case c.Adjustable() && (c.StepPs <= 0 || c.MaxSteps <= 0):
		return fmt.Errorf("cell %s: adjustable cell needs positive StepPs and MaxSteps", c.Name)
	case !c.Adjustable() && (c.StepPs != 0 || c.MaxSteps != 0):
		return fmt.Errorf("cell %s: non-adjustable cell must not define delay steps", c.Name)
	}
	return nil
}

// String implements fmt.Stringer.
func (c *Cell) String() string { return c.Name }
