package cell

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteLiberty serializes cell tables in a Liberty-flavoured text format:
//
//	library (name) {
//	  time_unit : "1ps";
//	  voltage : 1.1;
//	  cell (BUF_X8) {
//	    table (delay) {
//	      index_1 ("10, 20, 40");
//	      index_2 ("2, 4, 8");
//	      values ("11.2, 12.3, 14.1", "11.5, 12.6, 14.4", ...);
//	    }
//	    ...
//	  }
//	}
//
// The dialect is simplified (one voltage per library, four fixed table
// names) but structurally faithful, so the characterization can be
// inspected, diffed, and re-loaded without re-running the models.
func WriteLiberty(w io.Writer, libName string, vdd float64, tables []CellTables) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (%s) {\n", libName)
	fmt.Fprintf(bw, "  time_unit : \"1ps\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit : \"1fF\";\n")
	fmt.Fprintf(bw, "  current_unit : \"1uA\";\n")
	fmt.Fprintf(bw, "  voltage : %g;\n", vdd)
	for i := range tables {
		ct := &tables[i]
		if err := ct.Validate(); err != nil {
			return err
		}
		fmt.Fprintf(bw, "  cell (%s) {\n", ct.Cell)
		writeTable(bw, "delay", &ct.Delay)
		writeTable(bw, "out_slew", &ct.OutSlew)
		writeTable(bw, "peak_plus", &ct.PeakPlus)
		writeTable(bw, "peak_minus", &ct.PeakMinus)
		fmt.Fprintf(bw, "  }\n")
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func writeTable(w io.Writer, name string, t *NLDM) {
	fmt.Fprintf(w, "    table (%s) {\n", name)
	fmt.Fprintf(w, "      index_1 (%q);\n", joinFloats(t.Slews))
	fmt.Fprintf(w, "      index_2 (%q);\n", joinFloats(t.Loads))
	fmt.Fprintf(w, "      values (")
	for i, row := range t.Values {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "%q", joinFloats(row))
	}
	fmt.Fprintf(w, ");\n    }\n")
}

func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatFloat(x, 'g', 10, 64)
	}
	return strings.Join(parts, ", ")
}

// ParseLiberty reads the dialect WriteLiberty emits, returning the library
// name, supply voltage, and the per-cell tables.
func ParseLiberty(r io.Reader) (libName string, vdd float64, tables []CellTables, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur *CellTables
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "}":
			continue
		case strings.HasPrefix(line, "library ("):
			libName = between(line, "library (", ")")
		case strings.HasPrefix(line, "voltage :"):
			v := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "voltage :")), ";")
			vdd, err = strconv.ParseFloat(v, 64)
			if err != nil {
				return "", 0, nil, fmt.Errorf("liberty line %d: bad voltage %q", lineNo, v)
			}
		case strings.HasPrefix(line, "time_unit"), strings.HasPrefix(line, "capacitive_load_unit"),
			strings.HasPrefix(line, "current_unit"):
			// Units are fixed by the dialect.
		case strings.HasPrefix(line, "cell ("):
			tables = append(tables, CellTables{Cell: between(line, "cell (", ")"), VDD: vdd})
			cur = &tables[len(tables)-1]
		case strings.HasPrefix(line, "table ("):
			if cur == nil {
				return "", 0, nil, fmt.Errorf("liberty line %d: table outside cell", lineNo)
			}
			name := between(line, "table (", ")")
			var tbl NLDM
			if tbl, err = parseTable(sc, &lineNo); err != nil {
				return "", 0, nil, fmt.Errorf("liberty line %d: %w", lineNo, err)
			}
			switch name {
			case "delay":
				cur.Delay = tbl
			case "out_slew":
				cur.OutSlew = tbl
			case "peak_plus":
				cur.PeakPlus = tbl
			case "peak_minus":
				cur.PeakMinus = tbl
			default:
				return "", 0, nil, fmt.Errorf("liberty line %d: unknown table %q", lineNo, name)
			}
		default:
			return "", 0, nil, fmt.Errorf("liberty line %d: unexpected %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return "", 0, nil, err
	}
	for i := range tables {
		if err := tables[i].Validate(); err != nil {
			return "", 0, nil, err
		}
	}
	if libName == "" {
		return "", 0, nil, fmt.Errorf("liberty: no library block found")
	}
	return libName, vdd, tables, nil
}

func parseTable(sc *bufio.Scanner, lineNo *int) (NLDM, error) {
	var t NLDM
	for sc.Scan() {
		*lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "index_1 ("):
			xs, err := parseFloats(between(line, "index_1 (\"", "\")"))
			if err != nil {
				return t, err
			}
			t.Slews = xs
		case strings.HasPrefix(line, "index_2 ("):
			xs, err := parseFloats(between(line, "index_2 (\"", "\")"))
			if err != nil {
				return t, err
			}
			t.Loads = xs
		case strings.HasPrefix(line, "values ("):
			body := between(line, "values (", ");")
			for _, q := range strings.Split(body, "\", \"") {
				q = strings.Trim(q, "\"")
				row, err := parseFloats(q)
				if err != nil {
					return t, err
				}
				t.Values = append(t.Values, row)
			}
			return t, nil
		case line == "}":
			return t, fmt.Errorf("table ended before values")
		default:
			return t, fmt.Errorf("unexpected table line %q", line)
		}
	}
	return t, fmt.Errorf("unterminated table")
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// between extracts the substring after prefix and before the next
// occurrence of suffix; empty when not found.
func between(s, prefix, suffix string) string {
	i := strings.Index(s, prefix)
	if i < 0 {
		return ""
	}
	rest := s[i+len(prefix):]
	j := strings.Index(rest, suffix)
	if j < 0 {
		return rest
	}
	return rest[:j]
}
