package cell

import (
	"context"
	"fmt"
	"math"

	"wavemin/internal/spice"
	"wavemin/internal/waveform"
)

// SpiceProfile is a transistor-level characterization of one cell at one
// operating point, produced by simulating a switched-conductance CMOS
// stage model in internal/spice — the in-repo stand-in for the paper's
// HSPICE characterization runs, and the golden reference the closed-form
// Currents model is cross-validated against.
type SpiceProfile struct {
	Cell *Cell
	Load float64
	VDD  float64
	Slew float64

	TD  float64           // input edge to output 50 % crossing, ps
	IDD waveform.Waveform // current delivered by the VDD pad, µA
	ISS waveform.Waveform // current into the ground pad, µA
	Out waveform.Waveform // output voltage, V
}

// spiceEdgeAt is when the input edge arrives in the testbench, ps. Leaving
// headroom lets the DC point settle visibly and keeps pre-edge samples.
const spiceEdgeAt = 50.0

// SpiceCharacterize simulates the cell's output stage (and, for two-stage
// buffers/ADBs, its first stage feeding it) as switched pull-up/pull-down
// conductances with the PMOS/NMOS strength asymmetry, driving the load,
// and records the supply currents and propagation delay for one input
// edge.
//
// The transistor linearization: a MOS channel is an off→on conductance
// ramp while the gate traverses the input transition. The brief overlap of
// the turning-off and turning-on devices reproduces crowbar current
// naturally.
func SpiceCharacterize(c *Cell, e Edge, load, vdd, slewIn float64) (SpiceProfile, error) {
	if load < 0 || vdd <= 0 || slewIn <= 0 {
		return SpiceProfile{}, fmt.Errorf("cell: bad operating point load=%g vdd=%g slew=%g", load, vdd, slewIn)
	}
	ckt := spice.NewCircuit()
	vddPad := ckt.Node("vdd")
	ckt.V(vddPad, vdd) // source 0: IDD probe
	gndPad := ckt.Node("gndpad")
	ckt.V(gndPad, 0) // source 1: ISS probe
	gndRail := ckt.Node("gndrail")
	ckt.R(gndPad, gndRail, 1e-5)

	// Stage schedule: each inverting stage switches at a start time with a
	// transition time; stage k's output drives stage k+1.
	type stage struct {
		start, tt float64 // gate ramp window
		rises     bool    // output rises?
		rOn       float64 // on-resistance of the switching stage, kΩ
		cl        float64 // load at the stage output, fF
	}
	var stages []stage
	outRises := c.outputRises(e)
	switch c.Kind {
	case Buf, ADB:
		s1 := math.Max(1, c.Drive/4)
		r1 := c.RoutUnit / s1
		c1 := c.CinPerX*c.Drive + c.CparPerX*s1
		// Stage 1 inverts the input; stage 2 inverts again.
		st1 := stage{start: spiceEdgeAt, tt: slewIn, rises: e == Falling, rOn: r1, cl: c1}
		// Stage 2's gate sees stage 1's output: it switches roughly when
		// stage 1's output passes threshold, with stage 1's RC transition.
		t1 := 0.69 * r1 * c1 * vddDelayFactor(vdd)
		tt2 := math.Max(2, 2.2*r1*c1*vddDelayFactor(vdd))
		st2 := stage{start: spiceEdgeAt + t1, tt: tt2, rises: outRises,
			rOn: c.OutputRes(), cl: load + c.CparPerX*c.Drive}
		stages = []stage{st1, st2}
	default: // Inv, ADI: single inverting stage
		stages = []stage{{start: spiceEdgeAt, tt: slewIn, rises: outRises,
			rOn: c.OutputRes(), cl: load + c.CparPerX*c.Drive}}
	}

	var lastOut int
	for i, st := range stages {
		out := ckt.Node(fmt.Sprintf("out%d", i))
		// Pull-up strength reflects the PMOS handicap.
		gUp := 1 / (st.rOn * pullUpWiden) * vddDelayFactor(1.1) / vddDelayFactor(vdd)
		gDn := 1 / (st.rOn * pullDownNarrow) * vddDelayFactor(1.1) / vddDelayFactor(vdd)
		var up, dn waveform.Waveform
		if st.rises {
			up = spice.RampOn(st.start, st.tt, gUp)
			dn = spice.RampOff(st.start, st.tt, gDn)
		} else {
			up = spice.RampOff(st.start, st.tt, gUp)
			dn = spice.RampOn(st.start, st.tt, gDn)
		}
		ckt.SwitchedR(vddPad, out, up)
		ckt.SwitchedR(out, gndRail, dn)
		ckt.C(out, spice.Ground, st.cl)
		lastOut = out
	}

	horizon := spiceEdgeAt + slewIn
	for _, st := range stages {
		horizon = math.Max(horizon, st.start+st.tt)
	}
	horizon += 12 * stages[len(stages)-1].rOn * stages[len(stages)-1].cl // settle
	res, err := ckt.Transient(context.Background(), 0, horizon, 0.25)
	if err != nil {
		return SpiceProfile{}, err
	}

	p := SpiceProfile{Cell: c, Load: load, VDD: vdd, Slew: slewIn,
		IDD: res.SupplyCurrent(0), Out: res.Voltage(lastOut)}
	// ISS: current delivered *into* the circuit by the 0 V pad is the
	// negative of the current the circuit dumps into ground.
	p.ISS = res.SupplyCurrent(1).Scale(-1)
	td, err := crossing(p.Out, vdd/2, outRises, spiceEdgeAt)
	if err != nil {
		return SpiceProfile{}, err
	}
	p.TD = td - spiceEdgeAt
	return p, nil
}

// crossing finds the first time after tMin the waveform passes level in
// the given direction.
func crossing(w waveform.Waveform, level float64, rising bool, tMin float64) (float64, error) {
	pts := w.Points()
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if b.T < tMin {
			continue
		}
		var hit bool
		if rising {
			hit = a.I < level && b.I >= level
		} else {
			hit = a.I > level && b.I <= level
		}
		if hit {
			frac := (level - a.I) / (b.I - a.I)
			return a.T + frac*(b.T-a.T), nil
		}
	}
	return 0, fmt.Errorf("cell: output never crossed %g", level)
}

// PeakIDD returns the peak current drawn from the VDD pad during the
// switching event (after the edge; the DC pre-charge current is excluded).
func (p SpiceProfile) PeakIDD() float64 {
	peak, _ := p.IDD.Clip(spiceEdgeAt-1, p.IDD.Last()).Peak()
	return peak
}

// PeakISS returns the peak current pushed into the ground pad during the
// switching event.
func (p SpiceProfile) PeakISS() float64 {
	peak, _ := p.ISS.Clip(spiceEdgeAt-1, p.ISS.Last()).Peak()
	return peak
}
