package cell

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindAndEdgeStrings(t *testing.T) {
	if Buf.String() != "BUF" || Inv.String() != "INV" || ADB.String() != "ADB" || ADI.String() != "ADI" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
	if Rising.String() != "rise" || Falling.String() != "fall" {
		t.Fatal("Edge strings wrong")
	}
	if Rising.Opposite() != Falling || Falling.Opposite() != Rising {
		t.Fatal("Edge.Opposite wrong")
	}
}

func TestInvertingAndAdjustable(t *testing.T) {
	lib := DefaultLibrary()
	for _, c := range lib.Cells() {
		wantInv := c.Kind == Inv || c.Kind == ADI
		if c.Inverting() != wantInv {
			t.Errorf("%s: Inverting = %v", c.Name, c.Inverting())
		}
		wantAdj := c.Kind == ADB || c.Kind == ADI
		if c.Adjustable() != wantAdj {
			t.Errorf("%s: Adjustable = %v", c.Name, c.Adjustable())
		}
		if wantAdj && c.MaxAdjust() <= 0 {
			t.Errorf("%s: MaxAdjust = %g", c.Name, c.MaxAdjust())
		}
	}
}

func TestDelayDecreasesWithDrive(t *testing.T) {
	// Under a fixed load, a stronger cell must be faster.
	const load, vdd = 8.0, 1.1
	lib := DefaultLibrary()
	for _, kindCells := range [][]*Cell{lib.Buffers(), lib.Inverters()} {
		for i := 1; i < len(kindCells); i++ {
			a, b := kindCells[i-1], kindCells[i]
			// Library is name-sorted; compare by drive explicitly.
			lo, hi := a, b
			if lo.Drive > hi.Drive {
				lo, hi = hi, lo
			}
			if lo.Delay(load, vdd) <= hi.Delay(load, vdd) {
				t.Errorf("%s (%.0fX) not slower than %s (%.0fX): %g vs %g",
					lo.Name, lo.Drive, hi.Name, hi.Drive,
					lo.Delay(load, vdd), hi.Delay(load, vdd))
			}
		}
	}
}

func TestDelayIncreasesWithLoad(t *testing.T) {
	c := DefaultLibrary().MustByName("BUF_X4")
	if c.Delay(2, 1.1) >= c.Delay(10, 1.1) {
		t.Fatal("delay must increase with load")
	}
}

func TestDelayIncreasesAsVDDDrops(t *testing.T) {
	for _, c := range DefaultLibrary().Cells() {
		d11 := c.Delay(4, 1.1)
		d09 := c.Delay(4, 0.9)
		if d09 <= d11 {
			t.Errorf("%s: delay at 0.9V (%g) not larger than at 1.1V (%g)", c.Name, d09, d11)
		}
		// The paper's Tables II/III show ≈10–13 % slowdown.
		ratio := d09 / d11
		if ratio < 1.05 || ratio > 1.25 {
			t.Errorf("%s: VDD slowdown ratio %g out of plausible band", c.Name, ratio)
		}
	}
}

func TestPeaksScaleWithDrive(t *testing.T) {
	lib := DefaultLibrary()
	const load, vdd = 4.0, 1.1
	b1 := lib.MustByName("BUF_X1")
	b8 := lib.MustByName("BUF_X8")
	if b8.PeakPlus(load, vdd) <= b1.PeakPlus(load, vdd) {
		t.Fatal("bigger buffer should have larger P+")
	}
}

func TestPolarityOfPeaks(t *testing.T) {
	// Buffers: P+ >> P− (big IDD pulse at rising edge). Inverters: mirrored.
	const load, vdd = 4.0, 1.1
	for _, c := range DefaultLibrary().Cells() {
		pp, pm := c.PeakPlus(load, vdd), c.PeakMinus(load, vdd)
		if c.Inverting() {
			if pm <= pp {
				t.Errorf("%s: inverting cell should have P- > P+ (got %g, %g)", c.Name, pp, pm)
			}
		} else if pp <= pm {
			t.Errorf("%s: non-inverting cell should have P+ > P- (got %g, %g)", c.Name, pp, pm)
		}
	}
}

func TestPeaksDropWithVDD(t *testing.T) {
	c := DefaultLibrary().MustByName("INV_X8")
	if c.PeakMinus(4, 0.9) >= c.PeakMinus(4, 1.1) {
		t.Fatal("peak current should drop at lower VDD")
	}
}

func TestCurrentsMatchPeaksAndCharge(t *testing.T) {
	const load, vdd, slew = 4.0, 1.1, 20.0
	for _, c := range DefaultLibrary().Cells() {
		idd, iss := c.Currents(Rising, load, vdd, slew)
		// The main pulse lands on IDD for non-inverting, ISS for inverting.
		pIDD, _ := idd.Peak()
		pISS, _ := iss.Peak()
		if c.Inverting() {
			if pISS <= pIDD {
				t.Errorf("%s rising: ISS peak %g should exceed IDD peak %g", c.Name, pISS, pIDD)
			}
		} else {
			if pIDD <= pISS && c.Kind != Buf && c.Kind != ADB {
				t.Errorf("%s rising: IDD peak %g should exceed ISS peak %g", c.Name, pIDD, pISS)
			}
		}
		// Total charge on the switching rail ≈ C·V: within 2x for two-stage cells.
		q := idd.Charge() + iss.Charge()
		want := 1000 * (load + c.CparPerX*c.Drive) * vdd
		if q < 0.5*want || q > 3*want {
			t.Errorf("%s: total charge %g wildly off C·V = %g", c.Name, q, want)
		}
	}
}

func TestCurrentsEdgeAsymmetry(t *testing.T) {
	// An inverter's rising-edge ISS pulse (pull-down: narrow, tall) and
	// falling-edge IDD pulse (pull-up: wide, flat) switch the same charge
	// but differ in peak by the PMOS/NMOS strength ratio.
	c := DefaultLibrary().MustByName("INV_X4")
	_, issR := c.Currents(Rising, 4, 1.1, 20)
	iddF, _ := c.Currents(Falling, 4, 1.1, 20)
	pDown, _ := issR.Peak()
	pUp, _ := iddF.Peak()
	if pDown <= pUp {
		t.Fatalf("pull-down peak %g should exceed pull-up peak %g", pDown, pUp)
	}
	// Same switched charge within the shaping tolerance.
	qDown, qUp := issR.Charge(), iddF.Charge()
	if math.Abs(qDown-qUp) > 0.25*math.Max(qDown, qUp) {
		t.Fatalf("pulse charges diverged: %g vs %g", qDown, qUp)
	}
	// The closed-form peaks reflect the same asymmetry.
	if c.PeakMinus(4, 1.1) <= c.PeakPlus(4, 1.1) {
		t.Fatal("inverter P- must stay the dominant peak")
	}
}

func TestSlewWidensCurrentPulse(t *testing.T) {
	c := DefaultLibrary().MustByName("BUF_X8")
	iddSharp, _ := c.Currents(Rising, 4, 1.1, 5)
	iddSlow, _ := c.Currents(Rising, 4, 1.1, 60)
	pSharp, _ := iddSharp.Peak()
	pSlow, _ := iddSlow.Peak()
	if pSlow >= pSharp {
		t.Fatalf("slower input slew should flatten the pulse: %g vs %g", pSlow, pSharp)
	}
}

func TestADIHasLongerDelayThanADB(t *testing.T) {
	lib := DefaultLibrary()
	adb := lib.MustByName("ADB_X8")
	adi := lib.MustByName("ADI_X8")
	if adi.Delay(4, 1.1) <= adb.Delay(4, 1.1) {
		t.Fatal("ADI must be slower than ADB (three inverters, Fig. 4)")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Cell{
		{Name: "", Kind: Buf, Drive: 1, CinPerX: 1, RoutUnit: 1},
		{Name: "X", Kind: Buf, Drive: 0, CinPerX: 1, RoutUnit: 1},
		{Name: "X", Kind: Buf, Drive: 1, CinPerX: 0, RoutUnit: 1},
		{Name: "X", Kind: ADB, Drive: 1, CinPerX: 1, RoutUnit: 1, CparPerX: 1},                         // no steps
		{Name: "X", Kind: Buf, Drive: 1, CinPerX: 1, RoutUnit: 1, CparPerX: 1, StepPs: 1, MaxSteps: 1}, // steps on plain buf
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected validation error", i, c)
		}
	}
	for _, c := range DefaultLibrary().Cells() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: unexpected validation error %v", c.Name, err)
		}
	}
}

// Property: delay is monotone in load for every cell at both supplies.
func TestPropertyDelayMonotoneInLoad(t *testing.T) {
	cells := DefaultLibrary().Cells()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := cells[rng.Intn(len(cells))]
		l1 := rng.Float64() * 20
		l2 := l1 + 0.1 + rng.Float64()*20
		vdd := 0.9 + rng.Float64()*0.3
		return c.Delay(l1, vdd) < c.Delay(l2, vdd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: P+ of a buffer equals P− of "the same" inverter within model
// tolerance — the mirror image that makes polarity assignment work.
func TestPropertyBufferInverterMirror(t *testing.T) {
	lib := DefaultLibrary()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := []float64{1, 2, 4, 8, 16, 32}[rng.Intn(6)]
		load := 1 + rng.Float64()*15
		vdd := 0.9 + rng.Float64()*0.3
		b := lib.MustByName("BUF_X" + fmtDrive(x))
		iv := lib.MustByName("INV_X" + fmtDrive(x))
		bp := b.PeakPlus(load, vdd)
		ip := iv.PeakMinus(load, vdd)
		// Same output stage geometry: peaks within 20 %.
		return math.Abs(bp-ip) <= 0.2*math.Max(bp, ip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fmtDrive(x float64) string {
	switch x {
	case 1:
		return "1"
	case 2:
		return "2"
	case 4:
		return "4"
	case 8:
		return "8"
	case 16:
		return "16"
	default:
		return "32"
	}
}
