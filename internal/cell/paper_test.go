package cell

import (
	"math"
	"testing"
)

func TestPinnedCurrentsMatchTablePeaks(t *testing.T) {
	lib := PaperLibrary()
	for _, tc := range []struct {
		name     string
		vdd      float64
		pp, pm   float64
		inverted bool
	}{
		{"BUF_X1", 1.1, 130, 13, false},
		{"BUF_X2", 0.9, 234, 36, false},
		{"INV_X1", 1.1, 13, 130, true},
		{"INV_X2", 0.9, 36, 234, true},
	} {
		c := lib.MustByName(tc.name)
		iddR, issR := c.Currents(Rising, 0, tc.vdd, 20)
		iddF, issF := c.Currents(Falling, 0, tc.vdd, 20)
		if p, _ := iddR.Peak(); math.Abs(p-tc.pp) > 1e-9 {
			t.Errorf("%s IDD@rise peak %g, want %g", tc.name, p, tc.pp)
		}
		if p, _ := iddF.Peak(); math.Abs(p-tc.pm) > 1e-9 {
			t.Errorf("%s IDD@fall peak %g, want %g", tc.name, p, tc.pm)
		}
		// Rail symmetry: ISS mirrors IDD across edges.
		if p, _ := issR.Peak(); math.Abs(p-tc.pm) > 1e-9 {
			t.Errorf("%s ISS@rise peak %g, want %g", tc.name, p, tc.pm)
		}
		if p, _ := issF.Peak(); math.Abs(p-tc.pp) > 1e-9 {
			t.Errorf("%s ISS@fall peak %g, want %g", tc.name, p, tc.pp)
		}
	}
}

func TestPinnedCurrentsPeakNearTableDelay(t *testing.T) {
	c := PaperLibrary().MustByName("BUF_X2")
	idd, _ := c.Currents(Rising, 0, 1.1, 20)
	_, at := idd.Peak()
	if math.Abs(at-19) > 1 {
		t.Fatalf("pinned pulse peaks at %g, want ≈ TD=19", at)
	}
}
