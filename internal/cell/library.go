package cell

import (
	"fmt"
	"sort"
)

// Library is a named collection of cells: the union B ∪ I (∪ {ADB, ADI})
// the polarity assignment chooses from.
type Library struct {
	cells  []*Cell
	byName map[string]*Cell
}

// NewLibrary builds a library from the given cells, validating each and
// rejecting duplicate names.
func NewLibrary(cells ...*Cell) (*Library, error) {
	lib := &Library{byName: make(map[string]*Cell, len(cells))}
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, dup := lib.byName[c.Name]; dup {
			return nil, fmt.Errorf("library: duplicate cell %s", c.Name)
		}
		lib.cells = append(lib.cells, c)
		lib.byName[c.Name] = c
	}
	sort.Slice(lib.cells, func(i, j int) bool { return lib.cells[i].Name < lib.cells[j].Name })
	return lib, nil
}

// MustNewLibrary is NewLibrary but panics on error.
func MustNewLibrary(cells ...*Cell) *Library {
	lib, err := NewLibrary(cells...)
	if err != nil {
		panic(err)
	}
	return lib
}

// Cells returns all cells in deterministic (name) order.
func (l *Library) Cells() []*Cell { return append([]*Cell(nil), l.cells...) }

// ByName looks a cell up; ok is false when absent.
func (l *Library) ByName(name string) (*Cell, bool) {
	c, ok := l.byName[name]
	return c, ok
}

// MustByName looks a cell up and panics when absent; for tests and tables.
func (l *Library) MustByName(name string) *Cell {
	c, ok := l.byName[name]
	if !ok {
		panic("library: no cell named " + name)
	}
	return c
}

// Buffers returns the non-inverting, non-adjustable cells (the paper's B).
func (l *Library) Buffers() []*Cell { return l.filter(func(c *Cell) bool { return c.Kind == Buf }) }

// Inverters returns the inverting, non-adjustable cells (the paper's I).
func (l *Library) Inverters() []*Cell { return l.filter(func(c *Cell) bool { return c.Kind == Inv }) }

// Adjustables returns ADB and ADI cells.
func (l *Library) Adjustables() []*Cell {
	return l.filter(func(c *Cell) bool { return c.Adjustable() })
}

// Len returns the number of cells.
func (l *Library) Len() int { return len(l.cells) }

func (l *Library) filter(keep func(*Cell) bool) []*Cell {
	var out []*Cell
	for _, c := range l.cells {
		if keep(c) {
			out = append(out, c)
		}
	}
	return out
}

// WithCells returns a new library extended by the given cells.
func (l *Library) WithCells(cells ...*Cell) (*Library, error) {
	return NewLibrary(append(l.Cells(), cells...)...)
}

// Restrict returns a sub-library containing only the named cells, in the
// order given. Unknown names are an error.
func (l *Library) Restrict(names ...string) (*Library, error) {
	cells := make([]*Cell, 0, len(names))
	for _, n := range names {
		c, ok := l.byName[n]
		if !ok {
			return nil, fmt.Errorf("library: restrict: no cell named %s", n)
		}
		cells = append(cells, c)
	}
	return NewLibrary(cells...)
}

// analytic model parameters shared by the default library. Calibrated so
// that characterization at typical leaf loads lands in the range of the
// paper's Tables I/II (tens-to-hundreds of µA peaks, 15–40 ps delays).
const (
	bufCinPerX  = 0.25 // fF per X (Table I: BUF_X4 Cin = 1 fF)
	invCinPerX  = 0.28 // fF per X (Table I: INV_X8 Cin = 2.2 fF)
	routUnit    = 6.36 // kΩ (Table I: BUF_X16 Rout = 397.6 Ω)
	cparPerX    = 0.5  // fF per X
	bufIntrins  = 5.0  // ps
	invIntrins  = 6.0  // ps
	crowbarFrac = 0.11
)

func makeBuf(x float64) *Cell {
	return &Cell{
		Name: fmt.Sprintf("BUF_X%g", x), Kind: Buf, Drive: x,
		CinPerX: bufCinPerX, RoutUnit: routUnit, CparPerX: cparPerX,
		Intrinsic: bufIntrins, CrowbarFr: crowbarFrac,
	}
}

func makeInv(x float64) *Cell {
	return &Cell{
		Name: fmt.Sprintf("INV_X%g", x), Kind: Inv, Drive: x,
		CinPerX: invCinPerX, RoutUnit: routUnit, CparPerX: cparPerX,
		Intrinsic: invIntrins, CrowbarFr: crowbarFrac,
	}
}

// MakeADB returns an adjustable delay buffer of the given drive with the
// given capacitor-bank geometry (steps × stepPs).
func MakeADB(x float64, steps int, stepPs float64) *Cell {
	return &Cell{
		Name: fmt.Sprintf("ADB_X%g", x), Kind: ADB, Drive: x,
		CinPerX: bufCinPerX, RoutUnit: routUnit, CparPerX: cparPerX * 1.4,
		Intrinsic: bufIntrins + 2, CrowbarFr: crowbarFrac,
		StepPs: stepPs, MaxSteps: steps,
	}
}

// MakeADI returns the paper's adjustable delay inverter (Fig. 4): an
// inverting delay-adjustable cell with a longer base delay than the ADB of
// equal drive because of its extra inverter stages.
func MakeADI(x float64, steps int, stepPs float64) *Cell {
	return &Cell{
		Name: fmt.Sprintf("ADI_X%g", x), Kind: ADI, Drive: x,
		CinPerX: invCinPerX, RoutUnit: routUnit, CparPerX: cparPerX * 1.4,
		Intrinsic: invIntrins + 2, CrowbarFr: crowbarFrac,
		StepPs: stepPs, MaxSteps: steps,
	}
}

// DefaultLibrary returns the full analytic cell family: buffers and
// inverters X1..X32 plus one ADB and one ADI (X8, 32 steps × 3 ps: a 96 ps
// bank, enough to absorb multi-mode island shifts at tight κ).
func DefaultLibrary() *Library {
	var cells []*Cell
	for _, x := range []float64{1, 2, 4, 8, 16, 32} {
		cells = append(cells, makeBuf(x), makeInv(x))
	}
	cells = append(cells, MakeADB(8, 32, 3), MakeADI(8, 32, 3))
	return MustNewLibrary(cells...)
}

// SizingLibrary returns the four leaf types the paper's experiments assign
// (§VII-A): BUF_X8, BUF_X16, INV_X8, INV_X16.
func SizingLibrary() *Library {
	return MustNewLibrary(makeBuf(8), makeBuf(16), makeInv(8), makeInv(16))
}

// SizingLibraryWithAdjustables is SizingLibrary plus ADB_X8 and ADI_X8,
// the multi-mode experiment library (§VI: B ∪ I ∪ ADB ∪ ADI).
func SizingLibraryWithAdjustables() *Library {
	return MustNewLibrary(makeBuf(8), makeBuf(16), makeInv(8), makeInv(16),
		MakeADB(8, 32, 3), MakeADI(8, 32, 3))
}
