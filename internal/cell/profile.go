package cell

import (
	"fmt"
	"sort"
	"strings"

	"wavemin/internal/waveform"
)

// Profile is the result of characterizing one cell at one operating point —
// the paper's Fig. 7 lookup-table entry: propagation delay, output slew,
// and the hot-spot-sampled IDD/ISS waveforms for both clock edges, all
// relative to the input edge arriving at t = 0.
type Profile struct {
	Cell *Cell
	Load float64 // fF
	VDD  float64 // V
	Slew float64 // input slew used during profiling, ps (paper: 20 ps)

	TD      float64 // propagation delay, ps
	SlewOut float64 // output 20–80 % transition, ps

	IDDRise waveform.Waveform // IDD at a rising input edge
	ISSRise waveform.Waveform // ISS at a rising input edge
	IDDFall waveform.Waveform // IDD at a falling input edge
	ISSFall waveform.Waveform // ISS at a falling input edge
}

// ProfileSlew is the input transition time used while profiling. The paper
// uses 20 ps — "1 to 3 ps sharper than the average clock slew" — so the
// characterized peaks upper-bound the in-tree peaks.
const ProfileSlew = 20.0

// Characterize profiles one cell at one (load, VDD) point, the behavioural
// stand-in for the paper's HSPICE characterization run.
func Characterize(c *Cell, load, vdd float64) Profile {
	iddR, issR := c.Currents(Rising, load, vdd, ProfileSlew)
	iddF, issF := c.Currents(Falling, load, vdd, ProfileSlew)
	return Profile{
		Cell: c, Load: load, VDD: vdd, Slew: ProfileSlew,
		TD:      c.Delay(load, vdd),
		SlewOut: c.Slew(load, vdd),
		IDDRise: iddR, ISSRise: issR,
		IDDFall: iddF, ISSFall: issF,
	}
}

// PeakPlus returns the characterized P+ (peak IDD at rising edge).
func (p Profile) PeakPlus() float64 { pk, _ := p.IDDRise.Peak(); return pk }

// PeakMinus returns the characterized P− (peak IDD at falling edge).
func (p Profile) PeakMinus() float64 { pk, _ := p.IDDFall.Peak(); return pk }

// Rail selects a supply rail.
type Rail int

const (
	VDD Rail = iota
	Gnd
)

// String implements fmt.Stringer.
func (r Rail) String() string {
	if r == VDD {
		return "VDD"
	}
	return "Gnd"
}

// Current returns the characterized waveform for the given rail and edge.
func (p Profile) Current(r Rail, e Edge) waveform.Waveform {
	switch {
	case r == VDD && e == Rising:
		return p.IDDRise
	case r == VDD && e == Falling:
		return p.IDDFall
	case r == Gnd && e == Rising:
		return p.ISSRise
	default:
		return p.ISSFall
	}
}

// ProfileKey identifies a characterization point. Loads are bucketed by
// the profiler to keep the table small, exactly like a .lib load grid.
type ProfileKey struct {
	CellName string
	LoadStep int // load bucket index
	VDDmV    int // VDD in integer millivolts
}

// Profiler memoizes Characterize over a load grid: the paper's "extract
// noise data ... for all combinations of buffers/inverters in B ∪ I and
// sinks in L" preprocessing (§IV-B), without re-running the simulator per
// sink.
type Profiler struct {
	LoadGrid float64 // load bucket width, fF
	cache    map[ProfileKey]Profile
}

// NewProfiler returns a Profiler with the given load bucketing (fF).
func NewProfiler(loadGrid float64) *Profiler {
	if loadGrid <= 0 {
		loadGrid = 0.5
	}
	return &Profiler{LoadGrid: loadGrid, cache: make(map[ProfileKey]Profile)}
}

// bucket maps a load to its grid midpoint.
func (pr *Profiler) bucket(load float64) (int, float64) {
	step := int(load/pr.LoadGrid + 0.5)
	return step, float64(step) * pr.LoadGrid
}

// Profile returns the memoized characterization of c at (load, vdd), with
// the load snapped to the profiler's grid.
func (pr *Profiler) Profile(c *Cell, load, vdd float64) Profile {
	step, snapped := pr.bucket(load)
	key := ProfileKey{CellName: c.Name, LoadStep: step, VDDmV: int(vdd*1000 + 0.5)}
	if p, ok := pr.cache[key]; ok {
		return p
	}
	p := Characterize(c, snapped, vdd)
	pr.cache[key] = p
	return p
}

// Size reports how many characterization points are cached.
func (pr *Profiler) Size() int { return len(pr.cache) }

// CharacterizationTable renders a Table II/III-style text table for the
// library at the given load and supplies.
func CharacterizationTable(lib *Library, load float64, vdds []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "Type")
	for _, v := range vdds {
		fmt.Fprintf(&b, " | %22s", fmt.Sprintf("VDD=%.1fV (TD  P+   P-)", v))
	}
	b.WriteString("\n")
	cells := lib.Cells()
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Kind != cells[j].Kind {
			return cells[i].Kind < cells[j].Kind
		}
		return cells[i].Drive < cells[j].Drive
	})
	for _, c := range cells {
		fmt.Fprintf(&b, "%-10s", c.Name)
		for _, v := range vdds {
			fmt.Fprintf(&b, " | %6.1f %7.1f %7.1f", c.Delay(load, v), c.PeakPlus(load, v), c.PeakMinus(load, v))
		}
		b.WriteString("\n")
	}
	return b.String()
}
