package cell

import (
	"strings"
	"testing"
)

func TestNewLibraryRejectsDuplicates(t *testing.T) {
	if _, err := NewLibrary(makeBuf(1), makeBuf(1)); err == nil {
		t.Fatal("duplicate names should be rejected")
	}
}

func TestNewLibraryValidatesCells(t *testing.T) {
	if _, err := NewLibrary(&Cell{Name: "bad", Kind: Buf, Drive: -1}); err == nil {
		t.Fatal("invalid cell should be rejected")
	}
}

func TestLibraryQueries(t *testing.T) {
	lib := DefaultLibrary()
	if lib.Len() != 14 { // 6 buf + 6 inv + ADB + ADI
		t.Fatalf("default library size = %d, want 14", lib.Len())
	}
	if len(lib.Buffers()) != 6 || len(lib.Inverters()) != 6 || len(lib.Adjustables()) != 2 {
		t.Fatalf("library partition wrong: %d/%d/%d",
			len(lib.Buffers()), len(lib.Inverters()), len(lib.Adjustables()))
	}
	if _, ok := lib.ByName("BUF_X8"); !ok {
		t.Fatal("BUF_X8 missing")
	}
	if _, ok := lib.ByName("nope"); ok {
		t.Fatal("phantom cell found")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultLibrary().MustByName("nope")
}

func TestCellsReturnsCopy(t *testing.T) {
	lib := DefaultLibrary()
	cs := lib.Cells()
	cs[0] = nil
	if lib.Cells()[0] == nil {
		t.Fatal("Cells must return a defensive copy")
	}
}

func TestRestrict(t *testing.T) {
	lib := DefaultLibrary()
	sub, err := lib.Restrict("BUF_X8", "INV_X8")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 {
		t.Fatalf("restricted size %d", sub.Len())
	}
	if _, err := lib.Restrict("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestWithCells(t *testing.T) {
	lib := SizingLibrary()
	ext, err := lib.WithCells(MakeADB(8, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Len() != lib.Len()+1 {
		t.Fatal("WithCells did not extend")
	}
	if _, err := lib.WithCells(makeBuf(8)); err == nil {
		t.Fatal("duplicate extension should error")
	}
}

func TestSizingLibraries(t *testing.T) {
	s := SizingLibrary()
	for _, n := range []string{"BUF_X8", "BUF_X16", "INV_X8", "INV_X16"} {
		if _, ok := s.ByName(n); !ok {
			t.Errorf("sizing library missing %s", n)
		}
	}
	sa := SizingLibraryWithAdjustables()
	if len(sa.Adjustables()) != 2 {
		t.Fatal("adjustable sizing library should have ADB and ADI")
	}
}

func TestPaperLibraryMatchesTableII(t *testing.T) {
	lib := PaperLibrary()
	// Table II (VDD = 1.1 V).
	cases := []struct {
		name         string
		td, pp, pm   float64
		t9, pp9, pm9 float64 // Table III (VDD = 0.9 V)
	}{
		{"BUF_X1", 24, 130, 13, 27, 120, 10},
		{"BUF_X2", 19, 255, 44, 23, 234, 36},
		{"INV_X1", 21, 13, 130, 24, 10, 120},
		{"INV_X2", 17, 44, 255, 22, 36, 234},
	}
	for _, tc := range cases {
		c := lib.MustByName(tc.name)
		if got := c.Delay(0, 1.1); got != tc.td {
			t.Errorf("%s TD@1.1 = %g, want %g", tc.name, got, tc.td)
		}
		if got := c.PeakPlus(0, 1.1); got != tc.pp {
			t.Errorf("%s P+@1.1 = %g, want %g", tc.name, got, tc.pp)
		}
		if got := c.PeakMinus(0, 1.1); got != tc.pm {
			t.Errorf("%s P-@1.1 = %g, want %g", tc.name, got, tc.pm)
		}
		if got := c.Delay(0, 0.9); got != tc.t9 {
			t.Errorf("%s TD@0.9 = %g, want %g", tc.name, got, tc.t9)
		}
		if got := c.PeakPlus(0, 0.9); got != tc.pp9 {
			t.Errorf("%s P+@0.9 = %g, want %g", tc.name, got, tc.pp9)
		}
		if got := c.PeakMinus(0, 0.9); got != tc.pm9 {
			t.Errorf("%s P-@0.9 = %g, want %g", tc.name, got, tc.pm9)
		}
	}
}

func TestPaperLibraryFallsBackAnalytically(t *testing.T) {
	// At an uncharacterized VDD the table-pinned cell uses the analytic model.
	c := PaperLibrary().MustByName("BUF_X1")
	if d := c.Delay(4, 1.0); d <= 0 {
		t.Fatalf("analytic fallback delay = %g", d)
	}
}

func TestCharacterizationTableRenders(t *testing.T) {
	out := CharacterizationTable(PaperLibrary(), 0, []float64{0.9, 1.1})
	if !strings.Contains(out, "BUF_X1") || !strings.Contains(out, "INV_X2") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	// Spot-check a Table II value appears.
	if !strings.Contains(out, "255.0") {
		t.Fatalf("table missing characterized peak:\n%s", out)
	}
}
