package cell

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseLiberty checks the Liberty-dialect parser never panics and that
// anything it accepts round-trips through the writer.
func FuzzParseLiberty(f *testing.F) {
	// Seed with a real serialization and some near-misses.
	var buf bytes.Buffer
	slews, loads := []float64{10, 20}, []float64{2, 4}
	ct, err := BuildTables(SizingLibrary().MustByName("BUF_X8"), 1.1, slews, loads)
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteLiberty(&buf, "seed", 1.1, []CellTables{ct}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("library (l) {\n  voltage : 1.1;\n}")
	f.Add("library (l) {\n  cell (c) {\n  }\n}")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, src string) {
		name, vdd, tables, err := ParseLiberty(strings.NewReader(src))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must re-serialize.
		var out bytes.Buffer
		if err := WriteLiberty(&out, name, vdd, tables); err != nil {
			t.Fatalf("accepted input failed to re-serialize: %v", err)
		}
	})
}
