package wavemin

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestLoadSinksCSV(t *testing.T) {
	src := "x_um,y_um,cap_fF\n10.5,20.25,8\n30,40,6.5\n"
	sinks, err := LoadSinksCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 2 {
		t.Fatalf("%d sinks", len(sinks))
	}
	if sinks[0] != (Sink{X: 10.5, Y: 20.25, Cap: 8}) {
		t.Fatalf("sink 0 = %+v", sinks[0])
	}
	// Headerless input also accepted.
	noHeader, err := LoadSinksCSV(strings.NewReader("1,2,3\n"))
	if err != nil || len(noHeader) != 1 {
		t.Fatalf("headerless: %v %v", noHeader, err)
	}
}

func TestLoadSinksCSVErrors(t *testing.T) {
	for i, src := range []string{
		"",
		"x_um,y_um,cap_fF\n1,2\n",
		"x_um,y_um,cap_fF\n1,2,abc\n",
		"x_um,y_um,cap_fF\n1,2,0\n",
		"x_um,y_um,cap_fF\n1,2,-5\n",
	} {
		if _, err := LoadSinksCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSaveLoadTreeRoundTrip(t *testing.T) {
	d, err := New(gridSinks(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Optimize(context.Background(), Config{Samples: 16, MaxIntervals: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveTree(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := d.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := d2.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1.PeakCurrent-m2.PeakCurrent) > 1e-6 {
		t.Fatalf("peak after round trip: %g vs %g", m1.PeakCurrent, m2.PeakCurrent)
	}
	if math.Abs(m1.WorstSkew-m2.WorstSkew) > 1e-9 {
		t.Fatalf("skew after round trip: %g vs %g", m1.WorstSkew, m2.WorstSkew)
	}
}

func TestLoadTreeRejectsGarbage(t *testing.T) {
	if _, err := LoadTree(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestBenchgenCSVComposesWithLoadSinks(t *testing.T) {
	// The same CSV dialect benchgen emits round-trips through LoadSinksCSV
	// into a synthesizable design.
	src := "x_um,y_um,cap_fF\n"
	for i := 0; i < 8; i++ {
		src += fmt.Sprintf("%.3f,%.3f,8\n", 10+float64(i*10), 10+float64((i%2)*20))
	}
	sinks, err := LoadSinksCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(sinks)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tree.Leaves()) != 8 {
		t.Fatalf("%d leaves", len(d.Tree.Leaves()))
	}
}
