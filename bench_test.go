package wavemin

// Benchmark harness: one testing.B benchmark per paper table and figure
// (regenerating its data end-to-end on a reduced configuration so -bench
// runs stay tractable), plus ablation benches for the design choices
// DESIGN.md calls out and micro-benchmarks for the hot substrates. The
// full-parameter runs live in cmd/experiments.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"wavemin/internal/bench"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
	"wavemin/internal/experiments"
	"wavemin/internal/mosp"
	"wavemin/internal/polarity"
	"wavemin/internal/spice"
	"wavemin/internal/variation"
	"wavemin/internal/waveform"
	"wavemin/internal/xorpol"
)

// --- Paper tables ---------------------------------------------------------

func BenchmarkTable1SiblingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 16 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkTable2Characterization(b *testing.B) {
	lib := cell.SizingLibrary()
	for i := 0; i < b.N; i++ {
		if cell.CharacterizationTable(lib, 6, []float64{0.9, 1.1}) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable5PeakMinVsWaveMin(b *testing.B) {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.Table5Config{
				Circuits: []string{"s13207"}, Kappa: 20, Samples: 32,
				Epsilon: 0.01, MaxIntervals: 4, Workers: workers,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunTable5(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Rows[0].ImpPeak, "peak-improvement-%")
			}
		})
	}
}

func BenchmarkTable6SamplingSweep(b *testing.B) {
	cfg := experiments.Table6Config{
		Circuits: []string{"s13207"}, Kappa: 20, Epsilon: 0.01,
		SampleSweeps: []int{4, 8, 32}, FastSamples: 32, MaxIntervals: 4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7MultiMode(b *testing.B) {
	cfg := experiments.Table7Config{
		Circuits: []string{"s13207"}, SkewBounds: []float64{16},
		NumModes: 3, Samples: 16, Epsilon: 0.05, MaxIntersections: 4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ImpPeak, "peak-improvement-%")
	}
}

func BenchmarkMonteCarlo(b *testing.B) {
	cfg := experiments.MCConfig{
		Circuits: []string{"s13207"}, Kappa: 100, Samples: 16, Epsilon: 0.05,
		Sigma: 0.05, Instances: 100, Seed: 1, MaxIntervals: 4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMonteCarlo(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgYieldWM*100, "wm-yield-%")
	}
}

// --- Paper figures --------------------------------------------------------

func BenchmarkFig1Waveforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Enumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		if !res.ObservationHolds() {
			b.Fatal("observation 1 lost")
		}
	}
}

func BenchmarkFig3ADIToy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		if res.NumADIs == 0 {
			b.Fatal("ADIs not used")
		}
	}
}

func BenchmarkFig6Intervals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14DegreeOfFreedom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig14("s15850", 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Correlation, "pearson-r")
	}
}

// --- Ablations ------------------------------------------------------------

// benchTree builds the shared single-zone ablation instance.
func benchTree(b *testing.B) (*clocktree.Tree, *cell.Library) {
	b.Helper()
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < 10; i++ {
		sinks = append(sinks, cts.Sink{X: 18 + float64(i*2), Y: 20 + float64(i%3)*4, Cap: 8})
	}
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := cts.Synthesize(sinks, lib, opt)
	if err != nil {
		b.Fatal(err)
	}
	return tree, lib
}

func ablationConfig(lib *cell.Library) polarity.Config {
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		panic(err)
	}
	return polarity.Config{
		Library: sub, Kappa: 20, Samples: 32, Epsilon: 0.01,
		Algorithm: polarity.ClkWaveMin, MaxIntervals: 4,
	}
}

// BenchmarkAblationEpsilon sweeps Warburton's ε: coarser rounding trades
// quality for speed.
func BenchmarkAblationEpsilon(b *testing.B) {
	tree, lib := benchTree(b)
	for _, eps := range []float64{0.001, 0.01, 0.1, 0.5} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			cfg := ablationConfig(lib)
			cfg.Epsilon = eps
			for i := 0; i < b.N; i++ {
				res, err := polarity.Optimize(context.Background(), tree, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.PeakEstimate, "peak-estimate-uA")
			}
		})
	}
}

// BenchmarkAblationZoneSize sweeps the tile pitch around the paper's
// empirical 50 µm.
func BenchmarkAblationZoneSize(b *testing.B) {
	d, err := Benchmark("s13207")
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.DefaultLibrary()
	for _, zs := range []float64{25, 50, 100} {
		b.Run(fmt.Sprintf("zone=%gum", zs), func(b *testing.B) {
			cfg := ablationConfig(lib)
			cfg.ZoneSize = zs
			for i := 0; i < b.N; i++ {
				res, err := polarity.Optimize(context.Background(), d.Tree, cfg)
				if err != nil {
					b.Fatal(err)
				}
				work := d.Tree.Clone()
				polarity.Apply(work, res.Assignment)
				tm := work.ComputeTiming(clocktree.NominalMode)
				b.ReportMetric(work.PeakCurrent(tm), "golden-peak-uA")
			}
		})
	}
}

// BenchmarkAblationDoFPruning compares exploring one DoF-ordered interval
// against many — Fig. 14's claim that the high-DoF interval is where the
// good solutions live.
func BenchmarkAblationDoFPruning(b *testing.B) {
	tree, lib := benchTree(b)
	for _, max := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("intervals=%d", max), func(b *testing.B) {
			cfg := ablationConfig(lib)
			cfg.MaxIntervals = max
			for i := 0; i < b.N; i++ {
				res, err := polarity.Optimize(context.Background(), tree, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.PeakEstimate, "peak-estimate-uA")
			}
		})
	}
}

// BenchmarkAblationNonLeaf toggles Observation 1: optimizing blind to the
// non-leaf baseline, as prior work did.
func BenchmarkAblationNonLeaf(b *testing.B) {
	d, err := Benchmark("s13207")
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.DefaultLibrary()
	for _, ignore := range []bool{false, true} {
		name := "aware"
		if ignore {
			name = "blind"
		}
		b.Run(name, func(b *testing.B) {
			cfg := ablationConfig(lib)
			cfg.IgnoreNonLeaf = ignore
			for i := 0; i < b.N; i++ {
				res, err := polarity.Optimize(context.Background(), d.Tree, cfg)
				if err != nil {
					b.Fatal(err)
				}
				work := d.Tree.Clone()
				polarity.Apply(work, res.Assignment)
				tm := work.ComputeTiming(clocktree.NominalMode)
				b.ReportMetric(work.PeakCurrent(tm), "golden-peak-uA")
			}
		})
	}
}

// --- ECO / incremental re-optimization --------------------------------------

func ecoBenchConfig() Config {
	return Config{Kappa: 20, Samples: 16, Epsilon: 0.01, MaxIntervals: 384}
}

// cloneForRun snapshots a design for one solver run without sharing tree
// storage — the ECO benchmarks mirror the serving flow, where every job
// rebuilds its design from the canonical tree bytes, so a run's commit
// must never leak into the next iteration's problem.
func cloneForRun(d *Design) *Design {
	t, modes, lib := d.snapshot()
	return &Design{Tree: t, Grid: d.Grid, Modes: modes, lib: lib, dieW: d.dieW, dieH: d.dieH}
}

// BenchmarkECODelta1Leaf is the headline ECO number: on s35932, one leaf's
// sink load changes and the delta re-solve (seeded with the base run's
// per-zone solutions) is compared against a cold solve of the same edited
// tree. The results are bitwise-identical by contract — the benchmark
// asserts that once, untimed — so the cold/delta ns-per-op ratio is pure
// speedup, not a quality trade.
func BenchmarkECODelta1Leaf(b *testing.B) {
	base, err := Benchmark("s35932")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	cfg := ecoBenchConfig()

	// Base run: an empty ECO config opens a session that records every
	// (interval, zone) solution the run touches.
	baseCfg := cfg
	baseCfg.ECO = &ECOConfig{}
	baseRes, err := cloneForRun(base).Optimize(ctx, baseCfg)
	if err != nil {
		b.Fatal(err)
	}
	if len(baseRes.Zones) == 0 {
		b.Fatal("base run recorded no zone solutions")
	}

	// The ECO: one leaf's sink load changes.
	delta := cloneForRun(base)
	leaf := delta.Tree.Leaves()[0]
	delta.Tree.SetSinkCap(leaf, delta.Tree.Node(leaf).SinkCap+0.5)

	deltaCfg := cfg
	deltaCfg.ECO = &ECOConfig{BaseZones: baseRes.Zones}

	coldRes, err := cloneForRun(delta).Optimize(ctx, cfg)
	if err != nil {
		b.Fatal(err)
	}
	warmRes, err := cloneForRun(delta).Optimize(ctx, deltaCfg)
	if err != nil {
		b.Fatal(err)
	}
	if warmRes.ZonesReused == 0 || warmRes.ZonesResolved == 0 {
		b.Fatalf("delta run reused/resolved = %d/%d, want both > 0",
			warmRes.ZonesReused, warmRes.ZonesResolved)
	}
	coldJSON := resultBytesNoRuntime(b, coldRes)
	warmJSON := resultBytesNoRuntime(b, warmRes)
	if !bytes.Equal(coldJSON, warmJSON) {
		b.Fatalf("delta result diverged from cold solve:\ncold %s\nwarm %s", coldJSON, warmJSON)
	}

	run := func(b *testing.B, runCfg Config) *Result {
		var res *Result
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := cloneForRun(delta)
			b.StartTimer()
			var err error
			if res, err = d.Optimize(ctx, runCfg); err != nil {
				b.Fatal(err)
			}
		}
		return res
	}
	b.Run("cold", func(b *testing.B) { run(b, cfg) })
	b.Run("delta", func(b *testing.B) {
		res := run(b, deltaCfg)
		b.ReportMetric(float64(res.ZonesReused), "zones-reused")
		b.ReportMetric(float64(res.ZonesResolved), "zones-resolved")
	})
}

// resultBytesNoRuntime renders a result's canonical bytes minus Runtime —
// the one field that reports wall time, not answer content (the dispatch
// equivalence tests strip it the same way).
func resultBytesNoRuntime(b *testing.B, res *Result) []byte {
	b.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		b.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		b.Fatal(err)
	}
	delete(m, "Runtime")
	out, err := json.Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkECOColdVsWarm isolates the warm-start half of ECO: every leaf's
// load is perturbed, so no zone can replay and every instance re-solves —
// but the base run's solutions still pre-size the solver arenas by spatial
// zone. Warm starts are output-neutral capacity hints; the delta here is
// pure allocation behavior.
func BenchmarkECOColdVsWarm(b *testing.B) {
	base, err := Benchmark("s15850")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	cfg := ecoBenchConfig()

	baseCfg := cfg
	baseCfg.ECO = &ECOConfig{}
	baseRes, err := cloneForRun(base).Optimize(ctx, baseCfg)
	if err != nil {
		b.Fatal(err)
	}

	delta := cloneForRun(base)
	for _, leaf := range delta.Tree.Leaves() {
		delta.Tree.SetSinkCap(leaf, delta.Tree.Node(leaf).SinkCap+0.2)
	}
	warmCfg := cfg
	warmCfg.ECO = &ECOConfig{BaseZones: baseRes.Zones}

	run := func(b *testing.B, runCfg Config) *Result {
		var res *Result
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := cloneForRun(delta)
			b.StartTimer()
			var err error
			if res, err = d.Optimize(ctx, runCfg); err != nil {
				b.Fatal(err)
			}
		}
		return res
	}
	b.Run("cold", func(b *testing.B) { run(b, cfg) })
	b.Run("warm", func(b *testing.B) {
		res := run(b, warmCfg)
		if res.ZonesReused != 0 {
			b.Fatalf("perturbed tree replayed %d zones; the warm bench must re-solve everything", res.ZonesReused)
		}
		b.ReportMetric(float64(res.WarmStartLabels), "warmstart-labels")
	})
}

// --- Substrate micro-benchmarks --------------------------------------------

func BenchmarkMOSPSolve(b *testing.B) {
	g := &mosp.Graph{Baseline: make([]float64, 32)}
	for l := 0; l < 7; l++ {
		var layer []mosp.Vertex
		for v := 0; v < 4; v++ {
			w := make([]float64, 32)
			for s := range w {
				w[s] = float64((l*7+v*13+s*3)%50) + 1
			}
			layer = append(layer, mosp.Vertex{Weight: w, Tag: v})
		}
		g.Layers = append(g.Layers, layer)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mosp.Solve(context.Background(), g, mosp.Options{Epsilon: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpiceTransient(b *testing.B) {
	build := func() *spice.Circuit {
		c := spice.NewCircuit()
		prev := c.Node("pad")
		c.V(prev, 1.1)
		for i := 0; i < 50; i++ {
			n := c.Node(fmt.Sprintf("n%d", i))
			c.R(prev, n, 0.01)
			c.C(n, spice.Ground, 50)
			prev = n
		}
		c.I(prev, spice.Ground, waveform.Triangle(50, 10, 20, 3000))
		return c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build().Transient(context.Background(), 0, 300, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCTSSynthesize(b *testing.B) {
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < 100; i++ {
		sinks = append(sinks, cts.Sink{X: float64(i%10) * 30, Y: float64(i/10) * 30, Cap: 8})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cts.Synthesize(sinks, lib, cts.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerturbAndTiming(b *testing.B) {
	d, err := Benchmark("s13207")
	if err != nil {
		b.Fatal(err)
	}
	p := variation.Params{Sigma: 0.05, N: 1, Kappa: 100, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := variation.MonteCarlo(context.Background(), d.Tree, p); err != nil {
			b.Fatal(err)
		}
		p.Seed++
	}
}

// --- Extension benchmarks ---------------------------------------------------

// BenchmarkBaselines compares the three prior-work polarity strategies and
// WaveMin on the golden evaluator: global split [22], per-zone split [23],
// two-corner knapsack [27], and the fine-grained optimizer.
func BenchmarkBaselines(b *testing.B) {
	d, err := Benchmark("s13207")
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.DefaultLibrary()
	sizing, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		b.Fatal(err)
	}
	golden := func(a polarity.Assignment) float64 {
		work := d.Tree.Clone()
		polarity.Apply(work, a)
		return work.PeakCurrent(work.ComputeTiming(clocktree.NominalMode))
	}
	b.Run("nieh22", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := polarity.NiehBaseline(d.Tree, sizing, clocktree.NominalMode)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(golden(a), "golden-peak-uA")
		}
	})
	b.Run("samanta23", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := polarity.SamantaBaseline(d.Tree, sizing, clocktree.NominalMode, 50)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(golden(a), "golden-peak-uA")
		}
	})
	for name, algo := range map[string]polarity.Algorithm{
		"peakmin27": polarity.ClkPeakMinBaseline,
		"wavemin":   polarity.ClkWaveMin,
	} {
		algo := algo
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := polarity.Optimize(context.Background(), d.Tree, polarity.Config{
					Library: sizing, Kappa: 20, Samples: 32, Epsilon: 0.01,
					Algorithm: algo, MaxIntervals: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(golden(res.Assignment), "golden-peak-uA")
			}
		})
	}
}

// BenchmarkNonLeafExtension measures the Lu & Taskin-style internal-node
// polarity extension against plain leaf-only WaveMin.
func BenchmarkNonLeafExtension(b *testing.B) {
	d, err := Benchmark("s15850")
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.DefaultLibrary()
	sizing, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		b.Fatal(err)
	}
	cfg := polarity.Config{
		Library: sizing, Kappa: 20, Samples: 16, Epsilon: 0.05,
		Algorithm: polarity.ClkWaveMin, MaxIntervals: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := polarity.OptimizeWithNonLeafFlips(context.Background(), d.Tree, lib, cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GoldenPeak, "golden-peak-uA")
		b.ReportMetric(float64(len(res.Flips)), "flips")
	}
}

// BenchmarkCTSDMEVsBisection compares the two synthesis engines.
func BenchmarkCTSDMEVsBisection(b *testing.B) {
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < 80; i++ {
		sinks = append(sinks, cts.Sink{X: float64(i%10) * 35, Y: float64(i/10) * 35, Cap: 8})
	}
	b.Run("dme", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree, err := cts.SynthesizeDME(sinks, lib, cts.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(cts.TotalWireCap(tree), "wire-cap-fF")
		}
	})
	b.Run("bisection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(cts.TotalWireCap(tree), "wire-cap-fF")
		}
	})
}

// BenchmarkSpiceCharacterize measures the transistor-level testbench.
func BenchmarkSpiceCharacterize(b *testing.B) {
	c := cell.DefaultLibrary().MustByName("INV_X8")
	for i := 0; i < b.N; i++ {
		if _, err := cell.SpiceCharacterize(c, cell.Rising, 8, 1.1, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXORPolarity measures the dynamic per-mode polarity extension.
func BenchmarkXORPolarity(b *testing.B) {
	d, err := Benchmark("s13207")
	if err != nil {
		b.Fatal(err)
	}
	domains := d.PartitionVoltageIslands(4)
	spec, _ := bench.SpecByName("s13207")
	modes := spec.Modes(domains, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := xorpol.Optimize(context.Background(), d.Tree, modes, xorpol.Config{Samples: 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WorstPeak, "worst-mode-peak-uA")
	}
}
