package wavemin

import (
	"fmt"
	"runtime/debug"

	"wavemin/internal/parallel"
)

// InternalError reports that the optimization engine hit an internal
// invariant violation (a panic) that the facade converted into an error.
// The design is left exactly as it was before the failing call: the
// pipeline commits results atomically, so a mid-solve panic cannot leave
// a half-optimized tree behind.
//
// An InternalError is always a bug — in the engine or in a hand-built
// input that bypassed validation — so callers should report it rather
// than retry.
type InternalError struct {
	Value any    // the recovered panic value
	Stack []byte // goroutine stack captured at the recovery point
}

// Error implements the error interface.
func (e *InternalError) Error() string {
	return fmt.Sprintf("wavemin: internal error: %v", e.Value)
}

// recoverToError converts an in-flight panic into an *InternalError. It
// must be deferred directly from an exported facade function so the
// recover boundary sits at the public API surface.
//
// A panic on a parallel worker goroutine arrives wrapped in
// *parallel.Panic; it is unwrapped here so InternalError carries the
// original panic value and the worker's own stack, exactly as a serial
// panic would.
func recoverToError(errp *error) {
	if r := recover(); r != nil {
		if p, ok := r.(*parallel.Panic); ok {
			*errp = &InternalError{Value: p.Value, Stack: p.Stack}
			return
		}
		*errp = &InternalError{Value: r, Stack: debug.Stack()}
	}
}
