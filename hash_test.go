package wavemin

import (
	"strings"
	"testing"
)

func cacheKeyOf(t *testing.T, d *Design, cfg Config) string {
	t.Helper()
	k, err := d.CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCacheKeyDefaultFilling(t *testing.T) {
	d, err := New(gridSinks(6))
	if err != nil {
		t.Fatal(err)
	}
	zero := cacheKeyOf(t, d, Config{})
	spelled := cacheKeyOf(t, d, Config{
		Kappa: 20, Samples: 158, Epsilon: 0.01, ZoneSize: 50,
		Algorithm: WaveMin, MaxIntervals: 8, MaxIntersections: 8,
	})
	if zero != spelled {
		t.Fatal("zero config and spelled-out defaults must hash identically")
	}
}

func TestCacheKeyExcludesExecutionPolicy(t *testing.T) {
	d, err := New(gridSinks(6))
	if err != nil {
		t.Fatal(err)
	}
	base := cacheKeyOf(t, d, Config{})
	if cacheKeyOf(t, d, Config{Workers: 7}) != base {
		t.Fatal("Workers must not enter the cache key (results are worker-count independent)")
	}
	if cacheKeyOf(t, d, Config{Budget: 1e9}) != base {
		t.Fatal("Budget must not enter the cache key (execution policy)")
	}
}

func TestCacheKeySemanticFieldsChangeKey(t *testing.T) {
	d, err := New(gridSinks(6))
	if err != nil {
		t.Fatal(err)
	}
	base := cacheKeyOf(t, d, Config{})
	variants := map[string]Config{
		"kappa":             {Kappa: 25},
		"samples":           {Samples: 64},
		"epsilon":           {Epsilon: 0.05},
		"zone":              {ZoneSize: 75},
		"algorithm":         {Algorithm: WaveMinFast},
		"adi":               {EnableADI: true},
		"max_intervals":     {MaxIntervals: 4},
		"max_intersections": {MaxIntersections: 4},
	}
	seen := map[string]string{base: "base"}
	for name, cfg := range variants {
		k := cacheKeyOf(t, d, cfg)
		if prev, dup := seen[k]; dup {
			t.Fatalf("changing %s collided with %s", name, prev)
		}
		seen[k] = name
	}
}

func TestCacheKeyInvalidConfig(t *testing.T) {
	d, err := New(gridSinks(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CacheKey(Config{Kappa: -1}); err == nil {
		t.Fatal("invalid config must not produce a key")
	}
}

func TestCacheKeyModeCanonicalization(t *testing.T) {
	d, err := New(gridSinks(6))
	if err != nil {
		t.Fatal(err)
	}
	m1 := Mode{Name: "perf", Supplies: map[string]float64{"a": 1.1, "b": 1.1}}
	m2 := Mode{Name: "save", Supplies: map[string]float64{"a": 0.9, "b": 1.1}}

	if err := d.SetModes([]Mode{m1, m2}); err != nil {
		t.Fatal(err)
	}
	fwd := cacheKeyOf(t, d, Config{})
	if err := d.SetModes([]Mode{m2, m1}); err != nil {
		t.Fatal(err)
	}
	rev := cacheKeyOf(t, d, Config{})
	if fwd != rev {
		t.Fatal("permuted-but-identical mode lists must hash identically")
	}
	if err := d.SetModes([]Mode{m2, m1, m1}); err != nil {
		t.Fatal(err)
	}
	if cacheKeyOf(t, d, Config{}) != fwd {
		t.Fatal("an exact duplicate mode adds no constraint and must not change the key")
	}
	if err := d.SetModes([]Mode{m1, {Name: "save", Supplies: map[string]float64{"a": 0.95, "b": 1.1}}}); err != nil {
		t.Fatal(err)
	}
	if cacheKeyOf(t, d, Config{}) == fwd {
		t.Fatal("a changed supply voltage must change the key")
	}
	if err := d.SetModes([]Mode{m1, {Name: "sleep", Supplies: map[string]float64{"a": 0.9, "b": 1.1}}}); err != nil {
		t.Fatal(err)
	}
	if cacheKeyOf(t, d, Config{}) == fwd {
		t.Fatal("a changed mode name must change the key")
	}
}

func TestCacheKeyTreeSensitivity(t *testing.T) {
	d1, err := New(gridSinks(6))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(gridSinks(6))
	if err != nil {
		t.Fatal(err)
	}
	if cacheKeyOf(t, d1, Config{}) != cacheKeyOf(t, d2, Config{}) {
		t.Fatal("identically built designs must hash identically")
	}
	d3, err := New(gridSinks(7))
	if err != nil {
		t.Fatal(err)
	}
	if cacheKeyOf(t, d1, Config{}) == cacheKeyOf(t, d3, Config{}) {
		t.Fatal("different trees must not collide")
	}
	// A tree that round-trips through serialization keeps its key: the
	// canonical form IS the serialization.
	var sb strings.Builder
	if err := d1.SaveTree(&sb); err != nil {
		t.Fatal(err)
	}
	d4, err := LoadTree(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if cacheKeyOf(t, d1, Config{}) != cacheKeyOf(t, d4, Config{}) {
		t.Fatal("a round-tripped tree must keep its cache key")
	}
}
