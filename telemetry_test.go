package wavemin

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"wavemin/internal/obs"
)

// traceBytes runs one full Optimize with a Memory-sink trace attached and
// returns the content-only serialization of the trace (timing stripped),
// plus the Result for spot checks.
func traceBytes(t *testing.T, workers int) ([]byte, *Result) {
	t.Helper()
	d, err := New(gridSinks(12))
	if err != nil {
		t.Fatal(err)
	}
	mem := &obs.Memory{}
	tr := obs.New(obs.Options{Sink: mem, Snapshots: true})
	ctx := obs.Into(context.Background(), tr)
	res, err := d.Optimize(ctx, Config{Samples: 32, MaxIntervals: 4, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.Encode(&buf, obs.StripTiming(mem.Events())); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestParallelDeterminismTrace pins the trace determinism contract: with
// the Timing block stripped, the serialized trace of a full facade run is
// byte-for-byte identical at every worker count. Scheduling may only leave
// marks inside Timing (via Span.Sched) — any content difference here means
// a span was opened off the ordered-slot discipline or a counter depends
// on goroutine interleaving.
func TestParallelDeterminismTrace(t *testing.T) {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	ref, res := traceBytes(t, counts[0])
	if len(ref) == 0 {
		t.Fatal("empty trace stream")
	}
	if res.Stats == nil || len(res.Stats.Stages) == 0 {
		t.Fatalf("Result.Stats missing with trace attached: %+v", res.Stats)
	}
	for _, w := range counts[1:] {
		got, _ := traceBytes(t, w)
		if !bytes.Equal(got, ref) {
			t.Errorf("trace content differs between Workers=%d and Workers=%d:\n--- w=%d ---\n%s\n--- w=%d ---\n%s",
				counts[0], w, counts[0], firstDiffWindow(ref, got), w, firstDiffWindow(got, ref))
		}
	}
}

// TestParallelDeterminismTraceRoundTrip checks the stream a run emits is
// valid JSONL that survives Decode → Encode unchanged.
func TestParallelDeterminismTraceRoundTrip(t *testing.T) {
	raw, _ := traceBytes(t, 4)
	evs, err := obs.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decoding own trace: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("no events decoded")
	}
	var again bytes.Buffer
	if err := obs.Encode(&again, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), raw) {
		t.Error("Encode(Decode(trace)) is not a fixed point")
	}
	// The facade must have recorded the top-level stages.
	paths := make(map[string]bool, len(evs))
	for _, ev := range evs {
		paths[ev.Path] = true
	}
	for _, want := range []string{"optimize[0]", "optimize[0]/measure.before[0]"} {
		if !paths[want] {
			t.Errorf("trace missing span %q", want)
		}
	}
}

// firstDiffWindow returns a short window of a around the first byte where
// a and b differ, for readable failure output.
func firstDiffWindow(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hi := i + 80
	if hi > len(a) {
		hi = len(a)
	}
	return string(a[lo:hi])
}
