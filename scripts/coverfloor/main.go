// Command coverfloor reads a Go cover profile and enforces per-package
// and per-file coverage floors. Packages named with -floor (and files
// named with -filefloor) fail the build when their statement coverage is
// below the given percentage; every other package is reported
// informationally, so the gate only bites where the bar has been set.
// File floors exist for the files whose package-level number could hide
// them — a routing layer diluted by a large package still has to carry
// its own coverage.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	go run ./scripts/coverfloor -profile cover.out \
//	    -floor wavemin/internal/obs=70 \
//	    -filefloor wavemin/internal/server/shardroute.go=70
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// floors maps package import paths to their minimum coverage percent.
type floors map[string]float64

func (f floors) String() string {
	var parts []string
	for pkg, pct := range f {
		parts = append(parts, fmt.Sprintf("%s=%g", pkg, pct))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f floors) Set(v string) error {
	pkg, pctStr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want package=percent, got %q", v)
	}
	pct, err := strconv.ParseFloat(pctStr, 64)
	if err != nil || pct < 0 || pct > 100 {
		return fmt.Errorf("bad percent in %q", v)
	}
	f[pkg] = pct
	return nil
}

// pkgCov accumulates statement totals for one package.
type pkgCov struct {
	total, covered int
}

func (c pkgCov) percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("coverfloor: ")
	profile := flag.String("profile", "cover.out", "cover profile to read")
	want := floors{}
	flag.Var(want, "floor", "package=percent minimum, repeatable; unlisted packages are report-only")
	wantFile := floors{}
	flag.Var(wantFile, "filefloor", "file=percent minimum (profile path, e.g. wavemin/internal/server/shardroute.go), repeatable")
	flag.Parse()

	f, err := os.Open(*profile)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// Profile lines: "file.go:startL.startC,endL.endC numStmts count",
	// after a leading "mode:" line. Coverage is statement-weighted.
	byPkg := make(map[string]*pkgCov)
	byFile := make(map[string]*pkgCov)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			log.Fatalf("%s:%d: want 3 fields, got %d", *profile, lineNo, len(fields))
		}
		file, _, ok := strings.Cut(fields[0], ":")
		if !ok {
			log.Fatalf("%s:%d: no file:position separator", *profile, lineNo)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			log.Fatalf("%s:%d: bad statement count %q", *profile, lineNo, fields[1])
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			log.Fatalf("%s:%d: bad hit count %q", *profile, lineNo, fields[2])
		}
		pkg := path.Dir(file)
		c := byPkg[pkg]
		if c == nil {
			c = &pkgCov{}
			byPkg[pkg] = c
		}
		c.total += stmts
		if count > 0 {
			c.covered += stmts
		}
		if _, floored := wantFile[file]; floored {
			fc := byFile[file]
			if fc == nil {
				fc = &pkgCov{}
				byFile[file] = fc
			}
			fc.total += stmts
			if count > 0 {
				fc.covered += stmts
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(byPkg) == 0 {
		log.Fatalf("%s: no coverage blocks", *profile)
	}

	pkgs := make([]string, 0, len(byPkg))
	width := len("package")
	for pkg := range byPkg {
		pkgs = append(pkgs, pkg)
		if len(pkg) > width {
			width = len(pkg)
		}
	}
	sort.Strings(pkgs)
	fmt.Printf("%-*s  %9s  %s\n", width, "package", "stmts", "coverage")
	failed := false
	for _, pkg := range pkgs {
		c := byPkg[pkg]
		mark := ""
		if floor, ok := want[pkg]; ok {
			if c.percent() < floor {
				mark = fmt.Sprintf("  FAIL (floor %g%%)", floor)
				failed = true
			} else {
				mark = fmt.Sprintf("  ok (floor %g%%)", floor)
			}
		}
		fmt.Printf("%-*s  %9d  %7.1f%%%s\n", width, pkg, c.total, c.percent(), mark)
	}
	// A floored package that never shows up in the profile is a silent
	// gate removal (package deleted or tests skipped) — treat as failure.
	for pkg, floor := range want {
		if _, ok := byPkg[pkg]; !ok {
			fmt.Printf("%-*s  %9s  %8s  FAIL (floor %g%%, not in profile)\n", width, pkg, "-", "-", floor)
			failed = true
		}
	}
	// File floors: only floored files are shown (everything else already
	// appears in its package's line); a missing file is the same silent
	// gate removal as a missing package.
	files := make([]string, 0, len(wantFile))
	for file := range wantFile {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		floor := wantFile[file]
		c, ok := byFile[file]
		if !ok {
			fmt.Printf("%-*s  %9s  %8s  FAIL (file floor %g%%, not in profile)\n", width, file, "-", "-", floor)
			failed = true
			continue
		}
		mark := fmt.Sprintf("  ok (file floor %g%%)", floor)
		if c.percent() < floor {
			mark = fmt.Sprintf("  FAIL (file floor %g%%)", floor)
			failed = true
		}
		fmt.Printf("%-*s  %9d  %7.1f%%%s\n", width, file, c.total, c.percent(), mark)
	}
	if failed {
		os.Exit(1)
	}
}
