// Command benchjson converts `go test -bench` output on stdin into the
// repository's benchmark-snapshot JSON (the format of BENCH_baseline.json),
// for regression tracking with scripts/benchdiff.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./scripts/benchjson > BENCH_$(date +%F).json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark line: the standard ns/op, B/op and allocs/op
// columns plus any custom b.ReportMetric units.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is a dated benchmark run on one machine configuration.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	snap := Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if p, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); ok {
			pkg = pkgPrefix(p)
			continue
		}
		if b, ok := parseLine(line); ok {
			b.Name = pkg + b.Name
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine handles one `go test -bench` result line, e.g.
//
//	BenchmarkMOSPSolve-8   42   23633690 ns/op   1128505 B/op   66 allocs/op
//
// including custom metric columns like "12.3 peak-improvement-%".
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimProcs(fields[0])}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

// pkgPrefix turns a `pkg:` header into a name prefix so benchmarks from
// different packages cannot collide in one snapshot. The module root
// package keeps bare names (the historical format of
// BENCH_baseline.json); subpackages get their module-relative path,
// e.g. "internal/yield:BenchmarkYieldChunk".
func pkgPrefix(pkg string) string {
	if i := strings.Index(pkg, "/"); i >= 0 {
		return pkg[i+1:] + ":"
	}
	return ""
}

// trimProcs drops the trailing "-<gomaxprocs>" the bench runner appends,
// so names compare across machines.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
