// Command benchdiff compares two benchmark snapshots written by
// scripts/benchjson and reports the per-benchmark time and allocation
// deltas. It exits non-zero when any benchmark's ns/op regressed by more
// than -threshold percent — wire it as a non-blocking Makefile tier, since
// single-run snapshots carry real machine noise.
//
// Usage:
//
//	go run ./scripts/benchdiff [-threshold 25] BENCH_baseline.json BENCH_2026-08-06.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type benchmark struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	threshold := flag.Float64("threshold", 25, "ns/op regression percent that fails the diff")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] old.json new.json")
		os.Exit(2)
	}
	oldSnap, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newSnap, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Printf("old: %s (%s, GOMAXPROCS=%d)\n", flag.Arg(0), oldSnap.Date, oldSnap.GOMAXPROCS)
	fmt.Printf("new: %s (%s, GOMAXPROCS=%d)\n\n", flag.Arg(1), newSnap.Date, newSnap.GOMAXPROCS)

	oldBy := make(map[string]benchmark, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		oldBy[b.Name] = b
	}
	var names []string
	newBy := make(map[string]benchmark, len(newSnap.Benchmarks))
	for _, b := range newSnap.Benchmarks {
		newBy[b.Name] = b
		names = append(names, b.Name)
	}
	sort.Strings(names)

	regressed := 0
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok || ob.NsPerOp == 0 {
			fmt.Printf("%-60s %14s %14.0f %8s\n", name, "-", nb.NsPerOp, "new")
			continue
		}
		delta := 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSED"
			regressed++
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%%%s\n", name, ob.NsPerOp, nb.NsPerOp, delta, mark)
		if ob.AllocsPerOp > 0 && nb.AllocsPerOp > ob.AllocsPerOp*(1+*threshold/100) {
			fmt.Printf("%-60s %14.0f %14.0f allocs/op  REGRESSED\n", "  ^ allocations", ob.AllocsPerOp, nb.AllocsPerOp)
			regressed++
		}
	}
	for _, b := range oldSnap.Benchmarks {
		if _, ok := newBy[b.Name]; !ok {
			fmt.Printf("%-60s %14.0f %14s %8s\n", b.Name, b.NsPerOp, "-", "gone")
		}
	}
	if regressed > 0 {
		fmt.Printf("\n%d regression(s) beyond %.0f%%\n", regressed, *threshold)
		os.Exit(1)
	}
	fmt.Printf("\nno regressions beyond %.0f%%\n", *threshold)
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks", path)
	}
	return s, nil
}
